#include <gtest/gtest.h>

#include "net/network_model.h"

namespace fedsu::net {
namespace {

NetworkOptions flat_options() {
  NetworkOptions options;
  options.compute_sigma = 0.0;
  options.bandwidth_sigma = 0.0;
  options.round_jitter_sigma = 0.0;
  options.base_latency_s = 0.0;
  return options;
}

TEST(NetworkModel, ComputeTimeScalesWithFlops) {
  NetworkOptions options = flat_options();
  options.device_flops = 1e9;
  NetworkModel net(2, options);
  EXPECT_DOUBLE_EQ(net.compute_time(0, 0, 1e9), 1.0);
  EXPECT_DOUBLE_EQ(net.compute_time(0, 0, 2e9), 2.0);
}

TEST(NetworkModel, CommTimeMatchesBandwidth) {
  NetworkOptions options = flat_options();
  options.client_bandwidth_bps = 8e6;  // 1 MB/s
  NetworkModel net(1, options);
  // 1 MB up + 1 MB down at 1 MB/s each = 2 s.
  EXPECT_NEAR(net.comm_time(0, 1'000'000, 1'000'000, 1), 2.0, 1e-9);
}

TEST(NetworkModel, ZeroBytesCostNothing) {
  NetworkModel net(1, flat_options());
  EXPECT_DOUBLE_EQ(net.comm_time(0, 0, 0, 1), 0.0);
}

TEST(NetworkModel, LatencyAddsPerDirection) {
  NetworkOptions options = flat_options();
  options.base_latency_s = 0.1;
  options.client_bandwidth_bps = 8e9;  // negligible transfer time
  NetworkModel net(1, options);
  EXPECT_NEAR(net.comm_time(0, 100, 0, 1), 0.1, 1e-3);
  EXPECT_NEAR(net.comm_time(0, 100, 100, 1), 0.2, 1e-3);
}

TEST(NetworkModel, ServerLinkSharedAcrossClients) {
  NetworkOptions options = flat_options();
  options.client_bandwidth_bps = 1e12;  // client link not the bottleneck
  options.server_bandwidth_bps = 8e6;
  NetworkModel net(1, options);
  const double alone = net.comm_time(0, 1'000'000, 0, 1);
  const double crowded = net.comm_time(0, 1'000'000, 0, 10);
  EXPECT_NEAR(crowded, 10.0 * alone, 1e-6);
}

TEST(NetworkModel, HeterogeneityIsDeterministic) {
  NetworkOptions options;
  options.seed = 5;
  NetworkModel a(8, options), b(8, options);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.compute_time(i, 3, 1e9), b.compute_time(i, 3, 1e9));
    EXPECT_DOUBLE_EQ(a.client_bandwidth_bps(i), b.client_bandwidth_bps(i));
  }
}

TEST(NetworkModel, ClientsDifferUnderHeterogeneity) {
  NetworkOptions options;
  options.compute_sigma = 0.5;
  NetworkModel net(16, options);
  double min_t = 1e18, max_t = 0.0;
  for (int i = 0; i < 16; ++i) {
    const double t = net.compute_time(i, 0, 1e9);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_GT(max_t / min_t, 1.2);
}

TEST(NetworkModel, RoundJitterVariesAcrossRounds) {
  NetworkOptions options = flat_options();
  options.round_jitter_sigma = 0.3;
  NetworkModel net(1, options);
  const double t0 = net.compute_time(0, 0, 1e9);
  const double t1 = net.compute_time(0, 1, 1e9);
  EXPECT_NE(t0, t1);
}

TEST(NetworkModel, AddClientsExtendsPopulation) {
  NetworkModel net(2, flat_options());
  EXPECT_EQ(net.num_clients(), 2);
  net.add_clients(3);
  EXPECT_EQ(net.num_clients(), 5);
  EXPECT_NO_THROW(net.compute_time(4, 0, 1e9));
}

TEST(NetworkModel, BoundsChecked) {
  NetworkModel net(2, flat_options());
  EXPECT_THROW(net.compute_time(2, 0, 1e9), std::out_of_range);
  EXPECT_THROW(net.comm_time(-1, 1, 1, 1), std::out_of_range);
  EXPECT_THROW(NetworkModel(0, flat_options()), std::invalid_argument);
}

TEST(NetworkModel, ClientRoundTimeIsSum) {
  NetworkOptions options = flat_options();
  options.device_flops = 1e9;
  options.client_bandwidth_bps = 8e6;
  NetworkModel net(1, options);
  const double t = net.client_round_time(0, 0, 1e9, 1'000'000, 0, 1);
  EXPECT_NEAR(t, 1.0 + 1.0, 1e-9);
}

}  // namespace
}  // namespace fedsu::net
