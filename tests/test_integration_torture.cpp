// Combined-feature integration: the simulator options that individually
// work must also compose — flow-level timing + upload loss + uniform
// participation + client churn + LR schedule, all under FedSU.
// The round count is CI-tunable: FEDSU_TORTURE_ROUNDS=<n> stretches the
// long tests for the nightly torture job (default 24, the tier-1 budget).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"

namespace fedsu::fl {
namespace {

SimulationOptions torture_options() {
  SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 500;
  options.dataset.test_count = 150;
  options.num_clients = 6;
  options.local.iterations = 5;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.local.proximal_mu = 0.01f;
  options.lr_schedule = std::make_shared<nn::InverseSqrtLr>(0.05f, 2);
  options.timing = TimingModel::kFlowLevel;
  options.participation = SimulationOptions::Participation::kUniform;
  options.participation_fraction = 0.7;
  options.upload_loss_probability = 0.15;
  options.eval_every = 4;
  return options;
}

int torture_rounds() {
  if (const char* env = std::getenv("FEDSU_TORTURE_ROUNDS")) {
    const int rounds = std::atoi(env);
    if (rounds >= 8) return rounds;
  }
  return 24;
}

TEST(IntegrationTorture, AllFeaturesComposeUnderFedSu) {
  SimulationOptions options = torture_options();
  ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;
  protocol.fedsu.t_r = 0.1;
  Simulation sim(options, make_protocol(protocol));

  const float acc0 = sim.evaluate();
  const int rounds = torture_rounds();
  std::vector<RoundRecord> records;
  for (int r = 0; r < rounds; ++r) {
    records.push_back(sim.step());
    // Mid-run churn, scaled to the run length.
    if (r == rounds / 3) {
      data::SyntheticSpec spec = options.dataset;
      spec.seed ^= 0xFEED;
      spec.train_count = 80;
      auto extra = data::generate_synthetic(spec);
      (void)sim.add_client(std::move(extra.train));
    }
    if (r == 2 * rounds / 3) sim.drop_client(1);
  }
  const auto summary = metrics::summarize(records);
  // Learning still happens under the pile of adverse conditions.
  EXPECT_GT(summary.best_accuracy, acc0 + 0.25f);
  // Time advanced and every record is internally consistent.
  double prev_elapsed = 0.0;
  for (const auto& rec : records) {
    EXPECT_GE(rec.round_time_s, 0.0);
    EXPECT_GT(rec.elapsed_time_s, prev_elapsed);
    prev_elapsed = rec.elapsed_time_s;
    EXPECT_GE(rec.sparsification_ratio, 0.0);
    EXPECT_LE(rec.sparsification_ratio, 1.0);
    EXPECT_GE(rec.uploads_lost, 0);
  }
}

TEST(IntegrationTorture, DeterministicUnderAllFeatures) {
  SimulationOptions options = torture_options();
  ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;
  Simulation a(options, make_protocol(protocol));
  Simulation b(options, make_protocol(protocol));
  a.run(10);
  b.run(10);
  EXPECT_EQ(a.global_state(), b.global_state());
  EXPECT_DOUBLE_EQ(a.elapsed_time_s(), b.elapsed_time_s());
}

TEST(IntegrationTorture, BufferedAsyncComposesWithTheGauntlet) {
  // The same adverse pile, run through the buffered-async engine
  // (DESIGN.md §11): overlapping uploads, staleness weighting, loss and
  // churn all at once, with the cumulative dispatch reconciliation intact.
  SimulationOptions options = torture_options();
  options.async.enabled = true;
  options.async.buffer_k = 3;
  options.faults.crash_probability = 0.08;
  options.faults.crash_rounds_max = 2;
  ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;
  protocol.fedsu.t_r = 0.1;
  Simulation sim(options, make_protocol(protocol));

  const int rounds = torture_rounds();
  long long selected = 0, consumed = 0, lost = 0, corrupt = 0, deadline = 0,
            unused = 0, final_inflight = 0;
  double prev_elapsed = -1.0;
  for (int r = 0; r < rounds; ++r) {
    if (r == rounds / 3) {
      data::SyntheticSpec spec = options.dataset;
      spec.seed ^= 0xBEEF;
      spec.train_count = 80;
      auto extra = data::generate_synthetic(spec);
      (void)sim.add_client(std::move(extra.train));
    }
    if (r == 2 * rounds / 3) sim.drop_client(1);
    const RoundRecord rec = sim.step();
    ASSERT_TRUE(rec.async.has_value()) << "cycle " << r;
    ASSERT_TRUE(rec.faults.has_value()) << "cycle " << r;
    selected += rec.faults->selected;
    consumed += rec.async->consumed;
    lost += rec.uploads_lost;
    corrupt += rec.faults->corrupt;
    deadline += rec.faults->deadline_missed;
    unused += rec.faults->unused;
    final_inflight = rec.async->inflight;
    EXPECT_GE(rec.round_time_s, 0.0);
    EXPECT_GE(rec.elapsed_time_s, prev_elapsed);
    prev_elapsed = rec.elapsed_time_s;
  }
  EXPECT_EQ(selected,
            consumed + lost + corrupt + deadline + unused + final_inflight);
  EXPECT_GT(consumed, 0);
  for (float v : sim.global_state()) ASSERT_TRUE(std::isfinite(v));
}

TEST(IntegrationTorture, EveryProtocolSurvivesTheGauntlet) {
  for (const auto& name : known_protocols()) {
    SimulationOptions options = torture_options();
    options.eval_every = 0;
    ProtocolConfig protocol;
    protocol.name = name;
    protocol.num_clients = options.num_clients;
    Simulation sim(options, make_protocol(protocol));
    EXPECT_NO_THROW(sim.run(6)) << name;
    for (float v : sim.global_state()) {
      ASSERT_TRUE(std::isfinite(v)) << name;
    }
  }
}

}  // namespace
}  // namespace fedsu::fl
