// Combined-feature integration: the simulator options that individually
// work must also compose — flow-level timing + upload loss + uniform
// participation + client churn + LR schedule, all under FedSU.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "metrics/convergence.h"

namespace fedsu::fl {
namespace {

SimulationOptions torture_options() {
  SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 500;
  options.dataset.test_count = 150;
  options.num_clients = 6;
  options.local.iterations = 5;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.local.proximal_mu = 0.01f;
  options.lr_schedule = std::make_shared<nn::InverseSqrtLr>(0.05f, 2);
  options.timing = TimingModel::kFlowLevel;
  options.participation = SimulationOptions::Participation::kUniform;
  options.participation_fraction = 0.7;
  options.upload_loss_probability = 0.15;
  options.eval_every = 4;
  return options;
}

TEST(IntegrationTorture, AllFeaturesComposeUnderFedSu) {
  SimulationOptions options = torture_options();
  ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;
  protocol.fedsu.t_r = 0.1;
  Simulation sim(options, make_protocol(protocol));

  const float acc0 = sim.evaluate();
  std::vector<RoundRecord> records;
  for (int r = 0; r < 24; ++r) {
    records.push_back(sim.step());
    // Mid-run churn.
    if (r == 8) {
      data::SyntheticSpec spec = options.dataset;
      spec.seed ^= 0xFEED;
      spec.train_count = 80;
      auto extra = data::generate_synthetic(spec);
      (void)sim.add_client(std::move(extra.train));
    }
    if (r == 16) sim.drop_client(1);
  }
  const auto summary = metrics::summarize(records);
  // Learning still happens under the pile of adverse conditions.
  EXPECT_GT(summary.best_accuracy, acc0 + 0.25f);
  // Time advanced and every record is internally consistent.
  double prev_elapsed = 0.0;
  for (const auto& rec : records) {
    EXPECT_GE(rec.round_time_s, 0.0);
    EXPECT_GT(rec.elapsed_time_s, prev_elapsed);
    prev_elapsed = rec.elapsed_time_s;
    EXPECT_GE(rec.sparsification_ratio, 0.0);
    EXPECT_LE(rec.sparsification_ratio, 1.0);
    EXPECT_GE(rec.uploads_lost, 0);
  }
}

TEST(IntegrationTorture, DeterministicUnderAllFeatures) {
  SimulationOptions options = torture_options();
  ProtocolConfig protocol;
  protocol.name = "fedsu";
  protocol.num_clients = options.num_clients;
  Simulation a(options, make_protocol(protocol));
  Simulation b(options, make_protocol(protocol));
  a.run(10);
  b.run(10);
  EXPECT_EQ(a.global_state(), b.global_state());
  EXPECT_DOUBLE_EQ(a.elapsed_time_s(), b.elapsed_time_s());
}

TEST(IntegrationTorture, EveryProtocolSurvivesTheGauntlet) {
  for (const auto& name : known_protocols()) {
    SimulationOptions options = torture_options();
    options.eval_every = 0;
    ProtocolConfig protocol;
    protocol.name = name;
    protocol.num_clients = options.num_clients;
    Simulation sim(options, make_protocol(protocol));
    EXPECT_NO_THROW(sim.run(6)) << name;
    for (float v : sim.global_state()) {
      ASSERT_TRUE(std::isfinite(v)) << name;
    }
  }
}

}  // namespace
}  // namespace fedsu::fl
