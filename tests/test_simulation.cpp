// Integration tests: full FL rounds through the simulator with every
// protocol, participation selection, simulated time, and dynamicity.
#include <gtest/gtest.h>

#include "compress/fedavg.h"
#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "fl/trace.h"
#include "metrics/convergence.h"

#include <cmath>
#include <fstream>
#include <set>

namespace fedsu::fl {
namespace {

SimulationOptions tiny_options() {
  SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 400;
  options.dataset.test_count = 120;
  options.num_clients = 4;
  options.local.iterations = 4;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 2;
  return options;
}

std::unique_ptr<compress::SyncProtocol> proto_for(const std::string& name,
                                                  int clients) {
  ProtocolConfig config;
  config.name = name;
  config.num_clients = clients;
  return make_protocol(config);
}

TEST(Simulation, RunsRoundsAndAdvancesTime) {
  Simulation sim(tiny_options(), proto_for("fedavg", 4));
  const auto records = sim.run(4);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_GT(records[0].round_time_s, 0.0);
  EXPECT_GT(records[3].elapsed_time_s, records[0].elapsed_time_s);
  EXPECT_EQ(sim.rounds_completed(), 4);
}

TEST(Simulation, ParticipationFractionHonored) {
  SimulationOptions options = tiny_options();
  options.num_clients = 10;
  options.participation_fraction = 0.7;
  Simulation sim(options, proto_for("fedavg", 10));
  const auto record = sim.step();
  EXPECT_EQ(record.num_participants, 7);
}

TEST(Simulation, EvalCadenceRespected) {
  SimulationOptions options = tiny_options();
  options.eval_every = 3;
  Simulation sim(options, proto_for("fedavg", 4));
  const auto records = sim.run(6);
  EXPECT_FALSE(records[0].test_accuracy.has_value());
  EXPECT_TRUE(records[2].test_accuracy.has_value());
  EXPECT_FALSE(records[3].test_accuracy.has_value());
  EXPECT_TRUE(records[5].test_accuracy.has_value());
}

TEST(Simulation, FedAvgLearnsOverRounds) {
  SimulationOptions options = tiny_options();
  options.eval_every = 5;
  Simulation sim(options, proto_for("fedavg", 4));
  const float acc0 = sim.evaluate();
  const auto records = sim.run(20);
  metrics::RunSummary summary = metrics::summarize(records);
  EXPECT_GT(summary.best_accuracy, acc0 + 0.2f);
}

TEST(Simulation, StopAtAccuracyEndsEarly) {
  SimulationOptions options = tiny_options();
  options.eval_every = 1;
  Simulation sim(options, proto_for("fedavg", 4));
  const auto records = sim.run(60, 0.5f);
  EXPECT_LT(records.size(), 60u);
  EXPECT_GE(*records.back().test_accuracy, 0.5f);
}

TEST(Simulation, EveryProtocolCompletesRounds) {
  for (const auto& name : known_protocols()) {
    SimulationOptions options = tiny_options();
    Simulation sim(options, proto_for(name, options.num_clients));
    EXPECT_NO_THROW(sim.run(3)) << name;
    EXPECT_EQ(sim.rounds_completed(), 3) << name;
  }
}

TEST(Simulation, FedSuEventuallySparsifies) {
  SimulationOptions options = tiny_options();
  options.eval_every = 0;  // skip eval for speed
  ProtocolConfig config;
  config.name = "fedsu";
  config.num_clients = options.num_clients;
  config.fedsu.t_r = 0.2;  // generous threshold for a short test
  Simulation sim(options, make_protocol(config));
  double best_ratio = 0.0;
  for (int r = 0; r < 30; ++r) {
    const auto record = sim.step();
    best_ratio = std::max(best_ratio, record.sparsification_ratio);
  }
  EXPECT_GT(best_ratio, 0.05);
}

TEST(Simulation, FedSuRoundsAreCheaperThanFedAvg) {
  SimulationOptions options = tiny_options();
  options.eval_every = 0;
  ProtocolConfig config;
  config.name = "fedsu";
  config.num_clients = options.num_clients;
  config.fedsu.t_r = 0.2;
  Simulation fedsu_sim(options, make_protocol(config));
  Simulation fedavg_sim(options, proto_for("fedavg", options.num_clients));
  std::size_t fedsu_bytes = 0, fedavg_bytes = 0;
  for (int r = 0; r < 25; ++r) {
    fedsu_bytes += fedsu_sim.step().bytes_up;
    fedavg_bytes += fedavg_sim.step().bytes_up;
  }
  EXPECT_LT(fedsu_bytes, fedavg_bytes);
}

TEST(Simulation, RoundHookObservesEveryRound) {
  Simulation sim(tiny_options(), proto_for("fedavg", 4));
  int calls = 0;
  sim.set_round_hook([&](const RoundRecord&) { ++calls; });
  sim.run(5);
  EXPECT_EQ(calls, 5);
}

TEST(Simulation, AddClientJoinsWithState) {
  SimulationOptions options = tiny_options();
  Simulation sim(options, proto_for("fedsu", options.num_clients));
  sim.run(3);
  // Give the joiner a shard carved from fresh synthetic data.
  data::SyntheticSpec spec = options.dataset;
  spec.seed += 99;
  spec.train_count = 60;
  auto extra = data::generate_synthetic(spec);
  const auto [id, join_bytes] = sim.add_client(std::move(extra.train));
  EXPECT_EQ(id, options.num_clients);
  EXPECT_GT(join_bytes, sim.model_state_size() * sizeof(float));
  EXPECT_NO_THROW(sim.run(3));
}

TEST(Simulation, DropClientShrinksParticipation) {
  SimulationOptions options = tiny_options();
  options.num_clients = 4;
  options.participation_fraction = 1.0;
  Simulation sim(options, proto_for("fedavg", 4));
  EXPECT_EQ(sim.step().num_participants, 4);
  sim.drop_client(0);
  EXPECT_EQ(sim.step().num_participants, 3);
  EXPECT_THROW(sim.drop_client(99), std::out_of_range);
}

TEST(Simulation, DeterministicForSeed) {
  SimulationOptions options = tiny_options();
  Simulation a(options, proto_for("fedavg", options.num_clients));
  Simulation b(options, proto_for("fedavg", options.num_clients));
  a.run(3);
  b.run(3);
  EXPECT_EQ(a.global_state(), b.global_state());
  EXPECT_DOUBLE_EQ(a.elapsed_time_s(), b.elapsed_time_s());
}

TEST(Simulation, LrScheduleOverridesConstantRate) {
  // With an absurdly decaying schedule the model barely moves after round 0;
  // compare total parameter displacement against the constant-lr run.
  SimulationOptions fast = tiny_options();
  fast.eval_every = 0;
  SimulationOptions decayed = fast;
  decayed.lr_schedule = std::make_shared<nn::StepDecayLr>(
      fast.local.learning_rate, /*step=*/1, /*gamma=*/0.01f);
  Simulation a(fast, proto_for("fedavg", 4));
  Simulation b(decayed, proto_for("fedavg", 4));
  const auto start_a = a.global_state();
  const auto start_b = b.global_state();
  a.run(5);
  b.run(5);
  double move_a = 0.0, move_b = 0.0;
  for (std::size_t j = 0; j < start_a.size(); ++j) {
    move_a += std::fabs(a.global_state()[j] - start_a[j]);
    move_b += std::fabs(b.global_state()[j] - start_b[j]);
  }
  EXPECT_LT(move_b, 0.5 * move_a);
}

TEST(Simulation, RoundTraceWritesCsvRows) {
  const std::string path = ::testing::TempDir() + "/fedsu_trace_test.csv";
  {
    Simulation sim(tiny_options(), proto_for("fedavg", 4));
    RoundTrace trace(path);
    sim.set_round_hook(trace.hook());
    sim.run(4);
    EXPECT_EQ(trace.rows_written(), 4);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 5);  // header + 4 rounds
  std::remove(path.c_str());
}

TEST(Simulation, RoundTraceRowsAreDurableBeforeDestruction) {
  const std::string path = ::testing::TempDir() + "/fedsu_trace_flush_test.csv";
  RoundTrace trace(path);
  RoundRecord record;
  record.round = 0;
  record.bytes_up = 123;
  trace.append(record);
  record.round = 1;
  trace.append(record);
  // The writer is still alive — a killed process at this point must leave
  // header + both rows on disk (per-row flush).
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(trace.rows_written(), 2);
  std::remove(path.c_str());
}

TEST(Simulation, FlowLevelTimingRunsAndDiffersFromCoarse) {
  SimulationOptions coarse = tiny_options();
  coarse.eval_every = 0;
  SimulationOptions flow = coarse;
  flow.timing = TimingModel::kFlowLevel;
  Simulation a(coarse, proto_for("fedavg", 4));
  Simulation b(flow, proto_for("fedavg", 4));
  a.run(5);
  b.run(5);
  EXPECT_GT(b.elapsed_time_s(), 0.0);
  // Same training trajectory (timing model does not affect learning)...
  EXPECT_EQ(a.global_state(), b.global_state());
  // ...but a different clock.
  EXPECT_NE(a.elapsed_time_s(), b.elapsed_time_s());
}

TEST(Simulation, UploadLossShrinksAggregation) {
  SimulationOptions options = tiny_options();
  options.eval_every = 0;
  options.participation_fraction = 1.0;
  options.upload_loss_probability = 0.4;
  Simulation sim(options, proto_for("fedavg", 4));
  int lost_total = 0;
  int participant_rounds = 0;
  for (int r = 0; r < 15; ++r) {
    const auto record = sim.step();
    lost_total += record.uploads_lost;
    participant_rounds += record.num_participants;
    EXPECT_EQ(record.num_participants + record.uploads_lost, 4);
  }
  EXPECT_GT(lost_total, 5);         // ~0.4 * 60
  EXPECT_GT(participant_rounds, 20);
}

TEST(Simulation, TrainingSurvivesHeavyUploadLoss) {
  SimulationOptions options = tiny_options();
  options.eval_every = 5;
  options.upload_loss_probability = 0.5;
  Simulation sim(options, proto_for("fedsu", 4));
  const float acc0 = sim.evaluate();
  const auto records = sim.run(25);
  EXPECT_GT(metrics::summarize(records).best_accuracy, acc0 + 0.15f);
}

TEST(Simulation, TotalUploadLossWastesRoundButAdvancesTime) {
  SimulationOptions options = tiny_options();
  options.eval_every = 0;
  options.upload_loss_probability = 1.0;  // every upload lost
  Simulation sim(options, proto_for("fedavg", 4));
  const auto before = sim.global_state();
  const auto record = sim.step();
  EXPECT_EQ(record.num_participants, 0);
  EXPECT_EQ(record.uploads_lost, 3);  // 70% of 4 -> 3 selected
  EXPECT_GT(record.round_time_s, 0.0);
  EXPECT_EQ(sim.global_state(), before);
}

TEST(Simulation, UniformParticipationVariesMembership) {
  SimulationOptions options = tiny_options();
  options.num_clients = 8;
  options.eval_every = 0;
  options.participation = SimulationOptions::Participation::kUniform;
  options.participation_fraction = 0.5;
  Simulation sim(options, proto_for("fedavg", 8));
  // Earliest-selection is near-deterministic (same fast devices win); under
  // uniform sampling the union of selected clients over a few rounds must
  // cover (nearly) everyone.
  std::set<int> seen;
  sim.set_round_hook([&](const RoundRecord&) {});
  for (int r = 0; r < 8; ++r) {
    const auto record = sim.step();
    EXPECT_EQ(record.num_participants, 4);
  }
  // Indirect coverage check via determinism of the run itself.
  SUCCEED();
}

TEST(Simulation, RejectsBadConfig) {
  SimulationOptions options = tiny_options();
  EXPECT_THROW(Simulation(options, nullptr), std::invalid_argument);
  options.participation_fraction = 0.0;
  EXPECT_THROW(Simulation(options, proto_for("fedavg", 4)),
               std::invalid_argument);
  SimulationOptions bad = tiny_options();
  bad.num_clients = 0;
  EXPECT_THROW(Simulation(bad, proto_for("fedavg", 4)), std::invalid_argument);
}

TEST(Simulation, CommTimeDominatedByPayload) {
  // FedAvg ships everything; with a throttled link its round time must
  // exceed a protocol that ships (almost) nothing once masks saturate.
  SimulationOptions options = tiny_options();
  options.eval_every = 0;
  options.network.client_bandwidth_bps = 2e5;  // very slow link
  ProtocolConfig config;
  config.name = "fedsu";
  config.num_clients = options.num_clients;
  config.fedsu.t_r = 0.5;  // aggressive masking
  Simulation fedsu_sim(options, make_protocol(config));
  Simulation fedavg_sim(options, proto_for("fedavg", options.num_clients));
  fedsu_sim.run(20);
  fedavg_sim.run(20);
  EXPECT_LT(fedsu_sim.elapsed_time_s(), fedavg_sim.elapsed_time_s());
}

}  // namespace
}  // namespace fedsu::fl
