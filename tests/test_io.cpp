#include <gtest/gtest.h>

#include <cstdio>

#include "compress/fedavg.h"
#include "core/fedsu_manager.h"
#include "io/checkpoint.h"
#include "io/serialize.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace fedsu {
namespace {

TEST(PackedBitset, PackUnpackRoundTrip) {
  std::vector<std::uint8_t> mask{1, 0, 1, 1, 0, 0, 0, 1, 1};
  const auto packed = util::PackedBitset::pack(mask);
  EXPECT_EQ(packed.size(), mask.size());
  EXPECT_EQ(packed.count(), 5u);
  EXPECT_EQ(packed.unpack(), mask);
}

TEST(PackedBitset, SetAndTest) {
  util::PackedBitset bits(130);
  bits.set(0, true);
  bits.set(64, true);
  bits.set(129, true);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  bits.set(64, false);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_THROW(bits.test(130), std::out_of_range);
  EXPECT_THROW(bits.set(200, true), std::out_of_range);
}

TEST(PackedBitset, SerializeRoundTrip) {
  util::Rng rng(3);
  std::vector<std::uint8_t> mask(1000);
  for (auto& m : mask) m = rng.bernoulli(0.3) ? 1 : 0;
  const auto packed = util::PackedBitset::pack(mask);
  const auto bytes = packed.serialize();
  EXPECT_EQ(bytes.size(), packed.wire_bytes());
  const auto restored = util::PackedBitset::deserialize(bytes);
  EXPECT_EQ(restored, packed);
}

TEST(PackedBitset, WireSizeIsOneBitPerEntryPlusHeader) {
  util::PackedBitset bits(6400);
  EXPECT_EQ(bits.wire_bytes(), 8u + 6400 / 8);
}

TEST(PackedBitset, DeserializeRejectsGarbage) {
  EXPECT_THROW(util::PackedBitset::deserialize({1, 2, 3}),
               std::invalid_argument);
  std::vector<std::uint8_t> bad(8 + 3, 0);
  bad[0] = 200;  // claims 200 bits but only 3 payload bytes
  EXPECT_THROW(util::PackedBitset::deserialize(bad), std::invalid_argument);
}

TEST(Serialize, PrimitivesRoundTrip) {
  io::BinaryWriter writer;
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(1234567890123ULL);
  writer.write_i32(-42);
  writer.write_f32(3.5f);
  writer.write_f64(-2.25);
  writer.write_bool(true);
  writer.write_string("hello fedsu");
  writer.write_vector(std::vector<float>{1.0f, 2.0f});

  io::BinaryReader reader(writer.take());
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.read_u64(), 1234567890123ULL);
  EXPECT_EQ(reader.read_i32(), -42);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.5f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -2.25);
  EXPECT_TRUE(reader.read_bool());
  EXPECT_EQ(reader.read_string(), "hello fedsu");
  EXPECT_EQ(reader.read_vector<float>(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_TRUE(reader.at_end());
}

TEST(Serialize, ReadPastEndThrows) {
  io::BinaryReader reader({1, 2});
  EXPECT_THROW(reader.read_u32(), std::runtime_error);
}

TEST(Serialize, TruncatedVectorThrows) {
  io::BinaryWriter writer;
  writer.write_u64(1000);  // claims 1000 floats, provides none
  io::BinaryReader reader(writer.take());
  EXPECT_THROW(reader.read_vector<float>(), std::runtime_error);
}

TEST(Serialize, MagicMismatchThrows) {
  io::BinaryWriter writer;
  writer.write_magic(0x1111);
  io::BinaryReader reader(writer.take());
  EXPECT_THROW(reader.expect_magic(0x2222, "test"), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fedsu_serialize_test.bin";
  io::BinaryWriter writer;
  writer.write_string("file payload");
  writer.save_to_file(path);
  io::BinaryReader reader = io::BinaryReader::from_file(path);
  EXPECT_EQ(reader.read_string(), "file payload");
  std::remove(path.c_str());
  EXPECT_THROW(io::BinaryReader::from_file("/no/such/dir/x.bin"),
               std::runtime_error);
}

// Drives a FedSU manager a few rounds so its snapshot is non-trivial.
core::FedSuManager warmed_manager(int rounds) {
  core::FedSuOptions options;
  options.warmup = 3;
  core::FedSuManager manager(2, options);
  std::vector<float> global{0.0f, 0.0f, 0.0f};
  manager.initialize(global);
  util::Rng rng(5);
  std::vector<float> state = global;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t j = 0; j < state.size(); ++j) {
      state[j] += (j == 0) ? 0.125f : static_cast<float>(0.1 * rng.normal());
    }
    compress::RoundContext ctx;
    ctx.round = r;
    ctx.participants = {0, 1};
    std::vector<std::span<const float>> views{state, state};
    state = manager.synchronize(ctx, views).new_global;
  }
  return manager;
}

TEST(FedSuSnapshot, RestoredManagerBehavesIdentically) {
  core::FedSuManager original = warmed_manager(10);
  const auto snapshot = original.snapshot();

  core::FedSuManager restored(2);
  std::vector<float> dummy(3, 0.0f);
  restored.initialize(dummy);
  restored.restore(snapshot);
  EXPECT_EQ(restored.predictable_mask(), original.predictable_mask());
  EXPECT_EQ(restored.rounds_seen(), original.rounds_seen());

  // Both must produce bit-identical results on identical future inputs.
  util::Rng rng(9);
  std::vector<float> state{1.0f, 2.0f, 3.0f};
  for (int r = 0; r < 8; ++r) {
    for (auto& v : state) v += static_cast<float>(0.05 * rng.normal());
    compress::RoundContext ctx;
    ctx.round = 10 + r;
    ctx.participants = {0, 1};
    std::vector<std::span<const float>> views{state, state};
    const auto a = original.synchronize(ctx, views);
    const auto b = restored.synchronize(ctx, views);
    ASSERT_EQ(a.new_global, b.new_global) << "round " << r;
    ASSERT_EQ(a.bytes_up, b.bytes_up) << "round " << r;
  }
}

TEST(FedSuSnapshot, RejectsForeignBuffers) {
  core::FedSuManager manager(2);
  std::vector<float> global(3, 0.0f);
  manager.initialize(global);
  io::BinaryWriter writer;
  writer.write_magic(0x12345678);
  EXPECT_THROW(manager.restore(writer.take()), std::runtime_error);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fedsu_ckpt_test.bin";
  core::FedSuManager manager = warmed_manager(6);
  const io::Checkpoint saved =
      io::make_checkpoint(manager, {1.0f, 2.0f, 3.0f}, 6, 123.5);
  io::save_checkpoint(saved, path);
  const io::Checkpoint loaded = io::load_checkpoint(path);
  EXPECT_EQ(loaded.protocol_name, "FedSU");
  EXPECT_EQ(loaded.round, 6);
  EXPECT_DOUBLE_EQ(loaded.elapsed_time_s, 123.5);
  EXPECT_EQ(loaded.model_state, saved.model_state);
  EXPECT_EQ(loaded.protocol_snapshot, saved.protocol_snapshot);

  // The snapshot inside the checkpoint restores a working manager.
  core::FedSuManager restored(2);
  std::vector<float> dummy(3, 0.0f);
  restored.initialize(dummy);
  restored.restore(loaded.protocol_snapshot);
  EXPECT_EQ(restored.predictable_mask(), manager.predictable_mask());
  std::remove(path.c_str());
}

TEST(Checkpoint, StatelessProtocolHasEmptySnapshot) {
  compress::FedAvg fedavg;
  std::vector<float> global(4, 0.0f);
  fedavg.initialize(global);
  EXPECT_TRUE(fedavg.snapshot().empty());
  EXPECT_NO_THROW(fedavg.restore({}));
  EXPECT_THROW(fedavg.restore({1, 2, 3}), std::logic_error);
}

}  // namespace
}  // namespace fedsu
