#include <gtest/gtest.h>

#include "metrics/convergence.h"
#include "metrics/stats.h"

namespace fedsu::metrics {
namespace {

TEST(Cdf, QuantilesOfKnownSamples) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_NEAR(cdf.quantile(0.5), 51.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(Cdf, FractionBelow) {
  Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(100.0), 1.0);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf;
  for (int i = 0; i < 37; ++i) cdf.add(37 - i);
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(Cdf, ErrorsOnMisuse) {
  Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  cdf.add(1.0);
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.curve(1), std::invalid_argument);
}

TEST(NormalizedDifference, FirstObservationHasNoReference) {
  NormalizedDifference nd;
  EXPECT_LT(nd.observe({1.0f, 0.0f}), 0.0);
  EXPECT_TRUE(nd.history().empty());
}

TEST(NormalizedDifference, IdenticalUpdatesGiveZero) {
  NormalizedDifference nd;
  nd.observe({1.0f, 2.0f});
  EXPECT_DOUBLE_EQ(nd.observe({1.0f, 2.0f}), 0.0);
}

TEST(NormalizedDifference, KnownValue) {
  NormalizedDifference nd;
  nd.observe({3.0f, 4.0f});             // norm 5
  const double v = nd.observe({3.0f, 1.0f});  // diff (0, -3), norm 3
  EXPECT_NEAR(v, 3.0 / 5.0, 1e-9);
  EXPECT_EQ(nd.history().size(), 1u);
}

TEST(NormalizedDifference, SizeMismatchThrows) {
  NormalizedDifference nd;
  nd.observe({1.0f});
  EXPECT_THROW(nd.observe({1.0f, 2.0f}), std::invalid_argument);
}

TEST(Trajectory, RecordsSelectedIndices) {
  TrajectoryRecorder recorder({0, 2});
  recorder.record({1.0f, 2.0f, 3.0f});
  recorder.record({4.0f, 5.0f, 6.0f});
  ASSERT_EQ(recorder.series().size(), 2u);
  EXPECT_EQ(recorder.series()[0], (std::vector<float>{1.0f, 4.0f}));
  EXPECT_EQ(recorder.series()[1], (std::vector<float>{3.0f, 6.0f}));
  EXPECT_THROW(recorder.record({1.0f}), std::out_of_range);
}

fl::RoundRecord record_of(int round, double elapsed, std::optional<float> acc) {
  fl::RoundRecord r;
  r.round = round;
  r.elapsed_time_s = elapsed;
  r.test_accuracy = acc;
  return r;
}

TEST(ConvergenceTracker, DetectsFirstCrossing) {
  ConvergenceTracker tracker(0.6f);
  tracker.observe(record_of(0, 10.0, 0.4f));
  EXPECT_FALSE(tracker.reached());
  tracker.observe(record_of(1, 20.0, 0.65f));
  ASSERT_TRUE(tracker.reached());
  EXPECT_DOUBLE_EQ(tracker.time_to_target_s(), 20.0);
  EXPECT_EQ(tracker.rounds_to_target(), 2);
  // Later dips don't un-reach.
  tracker.observe(record_of(2, 30.0, 0.5f));
  EXPECT_TRUE(tracker.reached());
  EXPECT_DOUBLE_EQ(tracker.time_to_target_s(), 20.0);
}

TEST(ConvergenceTracker, IgnoresRoundsWithoutEval) {
  ConvergenceTracker tracker(0.5f);
  tracker.observe(record_of(0, 10.0, std::nullopt));
  EXPECT_FALSE(tracker.reached());
  EXPECT_THROW(tracker.time_to_target_s(), std::logic_error);
}

TEST(ConvergenceTracker, RejectsBadTarget) {
  EXPECT_THROW(ConvergenceTracker(0.0f), std::invalid_argument);
  EXPECT_THROW(ConvergenceTracker(1.5f), std::invalid_argument);
}

TEST(Summarize, AggregatesRecords) {
  std::vector<fl::RoundRecord> records;
  for (int r = 0; r < 4; ++r) {
    fl::RoundRecord rec;
    rec.round = r;
    rec.round_time_s = 2.0;
    rec.elapsed_time_s = 2.0 * (r + 1);
    rec.sparsification_ratio = 0.5;
    rec.bytes_up = 1000;
    rec.bytes_down = 1000;
    if (r == 3) rec.test_accuracy = 0.7f;
    records.push_back(rec);
  }
  const RunSummary s = summarize(records);
  EXPECT_EQ(s.rounds, 4);
  EXPECT_DOUBLE_EQ(s.total_time_s, 8.0);
  EXPECT_DOUBLE_EQ(s.mean_round_time_s, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_sparsification_ratio, 0.5);
  EXPECT_NEAR(s.total_gigabytes, 8e-6, 1e-12);
  EXPECT_FLOAT_EQ(s.final_accuracy, 0.7f);
}

TEST(Summarize, EmptyIsZero) {
  const RunSummary s = summarize({});
  EXPECT_EQ(s.rounds, 0);
  EXPECT_DOUBLE_EQ(s.total_time_s, 0.0);
}

}  // namespace
}  // namespace fedsu::metrics
