#include <gtest/gtest.h>

#include "net/flow_sim.h"
#include "net/round_timeline.h"

namespace fedsu::net {
namespace {

TEST(MaxMinFair, EqualFlowsShareEqually) {
  const auto rates = max_min_fair_rates({100.0, 100.0, 100.0, 100.0}, 40.0);
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(MaxMinFair, CappedFlowGetsCapRestShareRemainder) {
  // Capacity 30, caps {5, 100, 100}: capped flow takes 5, others 12.5 each.
  const auto rates = max_min_fair_rates({5.0, 100.0, 100.0}, 30.0);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 12.5);
  EXPECT_DOUBLE_EQ(rates[2], 12.5);
}

TEST(MaxMinFair, AllCapsUnderCapacityGiveCaps) {
  const auto rates = max_min_fair_rates({3.0, 4.0}, 100.0);
  EXPECT_DOUBLE_EQ(rates[0], 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
}

TEST(MaxMinFair, CascadingFreeze) {
  // Capacity 12, caps {2, 5, 100}: pass1 fair=4 freezes 2; pass2 fair=5
  // freezes 5; pass3 the last gets 5.
  const auto rates = max_min_fair_rates({2.0, 5.0, 100.0}, 12.0);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
  EXPECT_DOUBLE_EQ(rates[2], 5.0);
}

TEST(MaxMinFair, TotalNeverExceedsCapacity) {
  const auto rates = max_min_fair_rates({7.0, 9.0, 13.0, 2.0}, 20.0);
  double total = 0.0;
  for (double r : rates) total += r;
  EXPECT_LE(total, 20.0 + 1e-9);
}

TEST(MaxMinFair, Errors) {
  EXPECT_THROW(max_min_fair_rates({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(max_min_fair_rates({0.0}, 1.0), std::invalid_argument);
  EXPECT_TRUE(max_min_fair_rates({}, 1.0).empty());
}

TEST(FlowSim, SingleFlowClientCapped) {
  // 1 MB at 8 Mbps cap over a fat bottleneck: exactly 1 second.
  std::vector<Flow> flows{{0.0, 1e6, 8e6}};
  const auto results = simulate_shared_link(flows, 1e12);
  EXPECT_NEAR(results[0].finish_time_s, 1.0, 1e-9);
}

TEST(FlowSim, SingleFlowBottleneckCapped) {
  std::vector<Flow> flows{{0.0, 1e6, 1e12}};
  const auto results = simulate_shared_link(flows, 8e6);
  EXPECT_NEAR(results[0].finish_time_s, 1.0, 1e-9);
}

TEST(FlowSim, TwoEqualFlowsHalveThroughput) {
  // Two 1 MB flows over an 8 Mbps bottleneck: both finish at 2 s.
  std::vector<Flow> flows{{0.0, 1e6, 1e12}, {0.0, 1e6, 1e12}};
  const auto results = simulate_shared_link(flows, 8e6);
  EXPECT_NEAR(results[0].finish_time_s, 2.0, 1e-9);
  EXPECT_NEAR(results[1].finish_time_s, 2.0, 1e-9);
}

TEST(FlowSim, ShortFlowFinishesThenLongSpeedsUp) {
  // Flow A: 1 MB, flow B: 3 MB, bottleneck 8 Mbps (1 MB/s).
  // Shared 0.5 MB/s each until A done at t=2 (A moved 1 MB);
  // B then has 2 MB left at full 1 MB/s -> done at t=4.
  std::vector<Flow> flows{{0.0, 1e6, 1e12}, {0.0, 3e6, 1e12}};
  const auto results = simulate_shared_link(flows, 8e6);
  EXPECT_NEAR(results[0].finish_time_s, 2.0, 1e-6);
  EXPECT_NEAR(results[1].finish_time_s, 4.0, 1e-6);
}

TEST(FlowSim, StaggeredArrivalGetsFullLinkFirst) {
  // Flow A starts at 0 with 1 MB; flow B arrives at 0.5 s with 1 MB; the
  // bottleneck moves 1 MB/s. A alone for 0.5 s (0.5 MB left), then both at
  // 0.5 MB/s: A done at 1.5 s with B at 0.5 MB left, then B alone at full
  // rate -> done at 2.0 s.
  std::vector<Flow> flows{{0.0, 1e6, 1e12}, {0.5, 1e6, 1e12}};
  const auto results = simulate_shared_link(flows, 8e6);
  EXPECT_NEAR(results[0].finish_time_s, 1.5, 1e-6);
  EXPECT_NEAR(results[1].finish_time_s, 2.0, 1e-6);
}

TEST(FlowSim, ZeroByteFlowFinishesAtStart) {
  std::vector<Flow> flows{{3.0, 0.0, 1e6}, {0.0, 1e6, 1e12}};
  const auto results = simulate_shared_link(flows, 8e6);
  EXPECT_DOUBLE_EQ(results[0].finish_time_s, 3.0);
  EXPECT_NEAR(results[1].finish_time_s, 1.0, 1e-9);
}

TEST(FlowSim, IdleGapBeforeLateArrival) {
  std::vector<Flow> flows{{5.0, 1e6, 1e12}};
  const auto results = simulate_shared_link(flows, 8e6);
  EXPECT_NEAR(results[0].finish_time_s, 6.0, 1e-9);
}

TEST(FlowSim, RejectsBadInput) {
  EXPECT_THROW(simulate_shared_link({{0.0, -1.0, 1.0}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(simulate_shared_link({{0.0, 1.0, 0.0}}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(simulate_shared_link({{0.0, 1.0, 1.0}}, 0.0),
               std::invalid_argument);
}

TEST(FlowSim, ConservesWork) {
  // Total bytes / bottleneck is a lower bound on the makespan; with one
  // continuously-busy bottleneck it is exact once all flows have arrived
  // at time 0 and caps exceed the fair share.
  std::vector<Flow> flows;
  double total_bytes = 0.0;
  for (int i = 0; i < 5; ++i) {
    flows.push_back({0.0, 1e6 * (i + 1), 1e12});
    total_bytes += 1e6 * (i + 1);
  }
  const auto results = simulate_shared_link(flows, 8e6);
  double makespan = 0.0;
  for (const auto& r : results) makespan = std::max(makespan, r.finish_time_s);
  EXPECT_NEAR(makespan, total_bytes * 8.0 / 8e6, 1e-6);
}

TEST(RoundTimeline, TwoPhaseStructure) {
  RoundTimelineInput input;
  input.compute_done_s = {1.0, 2.0};
  input.bytes_up = {1e6, 1e6};
  input.bytes_down = {1e6, 1e6};
  input.client_rate_bps = {8e6, 8e6};
  input.server_bps = 1e12;  // client-capped
  const auto result = simulate_round(input);
  // Uploads: client 0 done at 2.0, client 1 at 3.0 (1 s each, caps bind).
  EXPECT_NEAR(result.upload_done_s[0], 2.0, 1e-9);
  EXPECT_NEAR(result.upload_done_s[1], 3.0, 1e-9);
  EXPECT_NEAR(result.broadcast_start_s, 3.0, 1e-9);
  // Downloads start together and take 1 s each.
  EXPECT_NEAR(result.round_done_s[0], 4.0, 1e-9);
  EXPECT_NEAR(result.round_end_s, 4.0, 1e-9);
}

TEST(RoundTimeline, ServerBottleneckSerializesBroadcast) {
  RoundTimelineInput input;
  input.compute_done_s = {0.0, 0.0};
  input.bytes_up = {0.0, 0.0};  // nothing to upload
  input.bytes_down = {1e6, 1e6};
  input.client_rate_bps = {1e12, 1e12};
  input.server_bps = 8e6;  // 1 MB/s shared
  const auto result = simulate_round(input);
  EXPECT_NEAR(result.broadcast_start_s, 0.0, 1e-9);
  EXPECT_NEAR(result.round_end_s, 2.0, 1e-9);  // 2 MB over 1 MB/s
}

TEST(RoundTimeline, RejectsMismatchedInputs) {
  RoundTimelineInput input;
  input.compute_done_s = {0.0};
  EXPECT_THROW(simulate_round(input), std::invalid_argument);
}

}  // namespace
}  // namespace fedsu::net
