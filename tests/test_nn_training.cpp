#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/sgd.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedsu::nn {
namespace {

TEST(Zoo, AllArchitecturesBuildAndRun) {
  for (const auto& arch : known_architectures()) {
    ModelSpec spec;
    spec.arch = arch;
    spec.in_channels = 1;
    spec.image_size = 28;
    spec.num_classes = 10;
    Model model = build_model(spec, util::Rng(1));
    EXPECT_GT(model.state_size(), 0u) << arch;
    EXPECT_GT(spec.flops_per_sample, 0.0) << arch;
    tensor::Tensor x({2, 1, 28, 28});
    const tensor::Tensor logits = model.forward(x, false);
    EXPECT_EQ(logits.shape(), (std::vector<int>{2, 10})) << arch;
  }
}

TEST(Zoo, DenseNetHandlesRgb32) {
  ModelSpec spec;
  spec.arch = "densenet";
  spec.in_channels = 3;
  spec.image_size = 32;
  Model model = build_model(spec, util::Rng(2));
  tensor::Tensor x({1, 3, 32, 32});
  EXPECT_EQ(model.forward(x, false).dim(1), 10);
}

TEST(Zoo, UnknownArchThrows) {
  ModelSpec spec;
  spec.arch = "transformer";
  EXPECT_THROW(build_model(spec, util::Rng(1)), std::invalid_argument);
}

TEST(Zoo, PaperSpecsMapDatasets) {
  EXPECT_EQ(paper_spec("emnist").arch, "cnn");
  EXPECT_EQ(paper_spec("fmnist").arch, "resnet");
  EXPECT_EQ(paper_spec("cifar").arch, "densenet");
  EXPECT_EQ(paper_spec("cifar").in_channels, 3);
  EXPECT_THROW(paper_spec("imagenet"), std::invalid_argument);
}

TEST(Zoo, SameSeedGivesIdenticalReplicas) {
  ModelSpec spec_a, spec_b;
  spec_a.arch = spec_b.arch = "cnn";
  Model a = build_model(spec_a, util::Rng(7));
  Model b = build_model(spec_b, util::Rng(7));
  EXPECT_EQ(a.state_vector(), b.state_vector());
}

TEST(Model, StateVectorRoundTrip) {
  ModelSpec spec;
  spec.arch = "mlp";
  Model model = build_model(spec, util::Rng(3));
  auto state = model.state_vector();
  ASSERT_EQ(state.size(), model.state_size());
  for (auto& v : state) v += 0.25f;
  model.load_state_vector(state);
  EXPECT_EQ(model.state_vector(), state);
}

TEST(Model, LoadRejectsWrongSize) {
  ModelSpec spec;
  spec.arch = "logistic";
  Model model = build_model(spec, util::Rng(4));
  std::vector<float> wrong(model.state_size() + 1, 0.0f);
  EXPECT_THROW(model.load_state_vector(wrong), std::invalid_argument);
}

TEST(Model, TrainableSubsetExcludesBnBuffers) {
  ModelSpec spec;
  spec.arch = "resnet";
  Model model = build_model(spec, util::Rng(5));
  EXPECT_LT(model.trainable_size(), model.state_size());
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  ModelSpec spec;
  spec.arch = "logistic";
  spec.image_size = 4;
  Model model = build_model(spec, util::Rng(6));
  const auto before = model.state_vector();
  model.zero_grads();
  for (Param* p : model.parameters()) p->grad.fill(1.0f);
  Sgd sgd(model.parameters(), {.learning_rate = 0.5f});
  sgd.step();
  const auto after = model.state_vector();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] - 0.5f, 1e-6);
  }
}

TEST(Sgd, WeightDecayShrinksWeights) {
  ModelSpec spec;
  spec.arch = "logistic";
  spec.image_size = 4;
  Model model = build_model(spec, util::Rng(7));
  model.zero_grads();
  Sgd sgd(model.parameters(), {.learning_rate = 0.1f, .weight_decay = 1.0f});
  const auto before = model.state_vector();
  sgd.step();
  const auto after = model.state_vector();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] * 0.9f, 1e-6);
  }
}

TEST(Sgd, MomentumAcceleratesRepeatedGradient) {
  ModelSpec spec;
  spec.arch = "logistic";
  spec.image_size = 4;
  Model model = build_model(spec, util::Rng(8));
  Sgd sgd(model.parameters(), {.learning_rate = 1.0f, .momentum = 0.9f});
  const auto start = model.state_vector();
  for (Param* p : model.parameters()) p->grad.fill(1.0f);
  sgd.step();  // velocity = 1, delta = 1
  const auto after1 = model.state_vector();
  sgd.step();  // velocity = 1.9, delta = 1.9
  const auto after2 = model.state_vector();
  const float d1 = start[0] - after1[0];
  const float d2 = after1[0] - after2[0];
  EXPECT_NEAR(d1, 1.0f, 1e-5);
  EXPECT_NEAR(d2, 1.9f, 1e-5);
}

TEST(Sgd, SkipsNonTrainableBuffers) {
  ModelSpec spec;
  spec.arch = "resnet";
  Model model = build_model(spec, util::Rng(9));
  // Fill every grad, step, and verify buffers did not move.
  for (Param* p : model.parameters()) p->grad.fill(1.0f);
  std::vector<float> buffers_before;
  for (Param* p : model.parameters()) {
    if (!p->trainable) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        buffers_before.push_back(p->value[i]);
      }
    }
  }
  Sgd sgd(model.parameters(), {.learning_rate = 0.5f});
  sgd.step();
  std::size_t k = 0;
  for (Param* p : model.parameters()) {
    if (!p->trainable) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        EXPECT_EQ(p->value[i], buffers_before[k++]);
      }
    }
  }
}

// End-to-end: a few epochs of SGD on the synthetic task must cut the loss
// markedly and beat random-guess accuracy. This is the learnability gate for
// the whole evaluation pipeline.
TEST(Training, MlpLearnsSyntheticTask) {
  data::SyntheticSpec dspec;
  dspec.train_count = 512;
  dspec.test_count = 256;
  dspec.image_size = 14;
  const auto data = data::generate_synthetic(dspec);

  ModelSpec mspec;
  mspec.arch = "mlp";
  mspec.image_size = 14;
  Model model = build_model(mspec, util::Rng(10));
  Sgd sgd(model.parameters(), {.learning_rate = 0.05f});
  SoftmaxCrossEntropy loss;

  util::Rng rng(11);
  tensor::Tensor batch;
  std::vector<int> labels;
  float first_loss = 0.0f, last_loss = 0.0f;
  const int steps = 150;
  for (int step = 0; step < steps; ++step) {
    std::vector<std::size_t> idx(32);
    for (auto& v : idx) v = rng.uniform_index(data.train.size());
    data.train.gather(idx, batch, labels);
    model.zero_grads();
    const float l = loss.forward(model.forward(batch, true), labels);
    model.backward(loss.backward());
    sgd.step();
    if (step == 0) first_loss = l;
    if (step == steps - 1) last_loss = l;
  }
  EXPECT_LT(last_loss, 0.6f * first_loss);

  // Test accuracy clearly above chance (10 classes -> 0.1).
  std::vector<std::size_t> all(data.test.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  data.test.gather(all, batch, labels);
  const float acc = accuracy(model.forward(batch, false), labels);
  EXPECT_GT(acc, 0.5f);
}

}  // namespace
}  // namespace fedsu::nn
