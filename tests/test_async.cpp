// Buffered-async overlapping rounds (FedBuff-style, DESIGN.md §11):
// staleness weighting, arrival ordering, thread-count determinism, barrier
// degeneration, and the fault × buffering reconciliation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "net/async_queue.h"

namespace fedsu::fl {
namespace {

SimulationOptions tiny_options() {
  SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 400;
  options.dataset.test_count = 120;
  options.num_clients = 4;
  options.local.iterations = 4;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 2;
  return options;
}

SimulationOptions async_options(int buffer_k, double alpha = 0.5) {
  SimulationOptions options = tiny_options();
  options.async.enabled = true;
  options.async.buffer_k = buffer_k;
  options.async.staleness_alpha = alpha;
  return options;
}

std::unique_ptr<compress::SyncProtocol> proto_for(const std::string& name,
                                                  int clients) {
  ProtocolConfig config;
  config.name = name;
  config.num_clients = clients;
  return make_protocol(config);
}

// --- the staleness discount ------------------------------------------------

TEST(StalenessWeight, MatchesTheFedBuffFormula) {
  EXPECT_DOUBLE_EQ(staleness_weight(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(staleness_weight(0, 7.0), 1.0);
  EXPECT_DOUBLE_EQ(staleness_weight(5, 0.0), 1.0);  // alpha 0 = unweighted
  EXPECT_DOUBLE_EQ(staleness_weight(1, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(staleness_weight(3, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(staleness_weight(1, 0.5), 1.0 / std::sqrt(2.0));
}

TEST(StalenessWeight, MonotoneInStalenessAndAlpha) {
  for (int s = 0; s < 8; ++s) {
    EXPECT_GT(staleness_weight(s, 0.5), staleness_weight(s + 1, 0.5));
    EXPECT_GT(staleness_weight(s + 1, 0.5), 0.0);
  }
  EXPECT_GT(staleness_weight(4, 0.25), staleness_weight(4, 0.5));
}

// --- arrival ordering ------------------------------------------------------

TEST(ArrivalTiebreak, DeterministicAndKeyedOnAllInputs) {
  const std::uint64_t base = net::arrival_tiebreak(42, 3, 7);
  EXPECT_EQ(net::arrival_tiebreak(42, 3, 7), base);
  EXPECT_NE(net::arrival_tiebreak(43, 3, 7), base);
  EXPECT_NE(net::arrival_tiebreak(42, 2, 7), base);
  EXPECT_NE(net::arrival_tiebreak(42, 3, 8), base);
}

TEST(AsyncUplink, AppendingLaterFlowsLeavesEarlierCompletionsBitwise) {
  // The re-simulation stability contract: flows added after a completion
  // instant must not move that completion (simulate_shared_link integrates
  // epochs in absolute time, so traffic starting later cannot contend with
  // bandwidth already spent).
  net::AsyncUplink uplink(1e6);
  const std::size_t f0 = uplink.add(0.0, 1000.0, 8e5);
  const std::size_t f1 = uplink.add(0.0, 2000.0, 8e5);
  const double c0 = uplink.completion_s(f0);
  const double c1 = uplink.completion_s(f1);
  EXPECT_GT(c0, 0.0);
  EXPECT_GT(c1, c0);  // more bytes at the same cap

  const std::size_t f2 = uplink.add(c1 + 1.0, 500.0, 8e5);
  EXPECT_EQ(uplink.completion_s(f0), c0);  // bitwise: same double
  EXPECT_EQ(uplink.completion_s(f1), c1);
  EXPECT_GT(uplink.completion_s(f2), c1);
  EXPECT_EQ(uplink.size(), 3u);
}

// --- §5b determinism, extended to the async engine -------------------------

struct AsyncRun {
  std::vector<RoundRecord> records;
  std::vector<float> state;
};

AsyncRun run_async(SimulationOptions options, const std::string& proto,
                   int cycles) {
  Simulation sim(options, proto_for(proto, options.num_clients));
  AsyncRun out;
  out.records = sim.run(cycles);
  out.state = sim.global_state();
  return out;
}

TEST(AsyncDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  for (int threads : {4, 8}) {
    SimulationOptions base = async_options(2);
    base.threads = 1;
    SimulationOptions alt = async_options(2);
    alt.threads = threads;
    const AsyncRun a = run_async(base, "fedsu", 8);
    const AsyncRun b = run_async(alt, "fedsu", 8);

    ASSERT_EQ(a.state.size(), b.state.size());
    EXPECT_EQ(std::memcmp(a.state.data(), b.state.data(),
                          a.state.size() * sizeof(float)),
              0)
        << "threads=" << threads;
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      const RoundRecord& ra = a.records[i];
      const RoundRecord& rb = b.records[i];
      EXPECT_EQ(ra.round_time_s, rb.round_time_s) << "cycle " << i;
      EXPECT_EQ(ra.bytes_up, rb.bytes_up) << "cycle " << i;
      EXPECT_EQ(ra.bytes_down, rb.bytes_down) << "cycle " << i;
      EXPECT_EQ(ra.num_participants, rb.num_participants) << "cycle " << i;
      ASSERT_TRUE(ra.async.has_value());
      ASSERT_TRUE(rb.async.has_value());
      EXPECT_EQ(ra.async->consumed, rb.async->consumed) << "cycle " << i;
      EXPECT_EQ(ra.async->max_staleness, rb.async->max_staleness)
          << "cycle " << i;
      EXPECT_EQ(ra.async->weight_sum, rb.async->weight_sum) << "cycle " << i;
      EXPECT_EQ(ra.async->fill_time_s, rb.async->fill_time_s) << "cycle " << i;
    }
  }
}

// --- barrier degeneration --------------------------------------------------

TEST(AsyncBarrier, KEqualToCohortWithoutFaultsIsTheSyncPathBitwise) {
  // DESIGN.md §11: K >= cohort with zero fault rates is structurally a
  // barrier, and the engine routes it to the exact synchronous path — the
  // whole byte stream (states, bytes, simulated clock) must match a plain
  // synchronous run with full participation under the flow-level model.
  SimulationOptions sync_options = tiny_options();
  sync_options.participation_fraction = 1.0;
  sync_options.timing = TimingModel::kFlowLevel;

  for (const char* proto : {"fedsu", "fedavg"}) {
    Simulation sync_sim(sync_options, proto_for(proto, 4));
    Simulation async_sim(async_options(4), proto_for(proto, 4));
    const auto sync_records = sync_sim.run(6);
    const auto async_records = async_sim.run(6);

    const auto& s = sync_sim.global_state();
    const auto& a = async_sim.global_state();
    ASSERT_EQ(s.size(), a.size());
    EXPECT_EQ(std::memcmp(s.data(), a.data(), s.size() * sizeof(float)), 0)
        << proto;
    ASSERT_EQ(sync_records.size(), async_records.size());
    for (std::size_t i = 0; i < sync_records.size(); ++i) {
      EXPECT_EQ(sync_records[i].round_time_s, async_records[i].round_time_s)
          << proto << " round " << i;
      EXPECT_EQ(sync_records[i].bytes_up, async_records[i].bytes_up)
          << proto << " round " << i;
      EXPECT_EQ(sync_records[i].bytes_down, async_records[i].bytes_down)
          << proto << " round " << i;
      EXPECT_EQ(sync_records[i].num_participants,
                async_records[i].num_participants)
          << proto << " round " << i;
      // The degenerate route IS the synchronous path: no async stats.
      EXPECT_FALSE(async_records[i].async.has_value()) << proto;
    }
  }
}

TEST(AsyncBarrier, KBeyondCohortClampsToTheBarrier) {
  // buffer_k far above the cohort cannot buffer more than the cohort ever
  // produces: with zero faults it is the same barrier as K == cohort.
  const AsyncRun exact = run_async(async_options(4), "fedsu", 6);
  const AsyncRun oversized = run_async(async_options(17), "fedsu", 6);
  ASSERT_EQ(exact.state.size(), oversized.state.size());
  EXPECT_EQ(std::memcmp(exact.state.data(), oversized.state.data(),
                        exact.state.size() * sizeof(float)),
            0);
  ASSERT_EQ(exact.records.size(), oversized.records.size());
  for (std::size_t i = 0; i < exact.records.size(); ++i) {
    EXPECT_EQ(exact.records[i].round_time_s, oversized.records[i].round_time_s);
    EXPECT_EQ(exact.records[i].bytes_up, oversized.records[i].bytes_up);
  }
}

TEST(AsyncBarrier, FaultyOversizedKRunsTheAsyncEngineClamped) {
  // With faults on, K >= cohort is NOT a barrier (a crashed client would
  // block the buffer forever): the async engine runs with K clamped to the
  // cohort and reports its effective value.
  SimulationOptions options = async_options(17);
  options.faults.straggler_probability = 0.3;
  const AsyncRun run = run_async(options, "fedavg", 6);
  for (const RoundRecord& r : run.records) {
    ASSERT_TRUE(r.async.has_value());
    EXPECT_EQ(r.async->buffer_k, 4);
    EXPECT_LE(r.async->consumed, 4);
    ASSERT_TRUE(r.faults.has_value());
  }
}

// --- staleness semantics ---------------------------------------------------

TEST(AsyncStaleness, AlphaZeroReducesToUnweightedBuffering) {
  // K = 1 with a 4-client cohort leaves three version-0 legs in flight after
  // the first aggregation, so later cycles consume genuinely stale uploads.
  const AsyncRun run = run_async(async_options(1, /*alpha=*/0.0), "fedavg", 8);
  bool saw_stale = false;
  for (const RoundRecord& r : run.records) {
    ASSERT_TRUE(r.async.has_value());
    // Unweighted: every consumed upload carries weight exactly 1.
    EXPECT_EQ(r.async->weight_sum, static_cast<double>(r.async->consumed))
        << "cycle " << r.round;
    saw_stale = saw_stale || r.async->max_staleness > 0;
  }
  EXPECT_TRUE(saw_stale) << "K=1 never consumed a stale upload";
}

TEST(AsyncStaleness, PositiveAlphaDiscountsStaleUploads) {
  const AsyncRun run = run_async(async_options(1, /*alpha=*/2.0), "fedavg", 8);
  bool saw_discount = false;
  for (const RoundRecord& r : run.records) {
    ASSERT_TRUE(r.async.has_value());
    EXPECT_LE(r.async->weight_sum, static_cast<double>(r.async->consumed));
    if (r.async->max_staleness > 0) {
      EXPECT_LT(r.async->weight_sum, static_cast<double>(r.async->consumed))
          << "cycle " << r.round;
      saw_discount = true;
    }
  }
  EXPECT_TRUE(saw_discount);
}

TEST(AsyncStaleness, UploadsSurviveBeingSupersededTwice) {
  // K = 1: the last of the first wave's legs is consumed only after several
  // aggregations — its model version has been superseded at least twice.
  // The run must keep aggregating and the state must stay finite.
  const AsyncRun run = run_async(async_options(1), "fedsu", 10);
  int max_staleness = 0;
  for (const RoundRecord& r : run.records) {
    ASSERT_TRUE(r.async.has_value());
    max_staleness = std::max(max_staleness, r.async->max_staleness);
    EXPECT_EQ(r.num_participants, r.async->consumed);
    int hist_sum = 0;
    for (int count : r.async->staleness_hist) hist_sum += count;
    EXPECT_EQ(hist_sum, r.async->consumed) << "cycle " << r.round;
  }
  EXPECT_GE(max_staleness, 2);
  for (float v : run.state) ASSERT_TRUE(std::isfinite(v));
}

// --- faults × buffering ----------------------------------------------------

FaultOptions hostile_mix() {
  FaultOptions f;
  f.crash_probability = 0.1;
  f.crash_rounds_max = 2;
  f.straggler_probability = 0.25;
  f.upload_loss_probability = 0.2;
  f.max_retries = 1;
  f.retry_backoff_s = 1.0;
  f.corruption_probability = 0.1;
  return f;
}

TEST(AsyncFaults, CumulativeReconciliationAndThreadIdentity) {
  // Async pipelining breaks the per-round fault balance (a cycle consumes
  // uploads dispatched cycles earlier), so the invariant is cumulative:
  // every dispatched leg is eventually consumed, lost, corrupted,
  // deadline-dropped, or still in flight when the run ends.
  auto run_with = [](int threads) {
    SimulationOptions options = async_options(2);
    options.num_clients = 6;
    options.threads = threads;
    options.faults = hostile_mix();
    return run_async(options, "fedsu", 12);
  };
  const AsyncRun a = run_with(1);
  const AsyncRun b = run_with(4);

  long long selected = 0, consumed = 0, lost = 0, corrupt = 0, deadline = 0,
            unused = 0;
  for (const RoundRecord& r : a.records) {
    ASSERT_TRUE(r.faults.has_value());
    ASSERT_TRUE(r.async.has_value());
    selected += r.faults->selected;
    consumed += r.async->consumed;
    lost += r.uploads_lost;
    corrupt += r.faults->corrupt;
    deadline += r.faults->deadline_missed;
    unused += r.faults->unused;
    EXPECT_EQ(r.num_participants, r.async->consumed);
  }
  const long long final_inflight = a.records.back().async->inflight;
  EXPECT_EQ(selected,
            consumed + lost + corrupt + deadline + unused + final_inflight);
  EXPECT_GT(consumed, 0);

  // §5b under faults AND buffering: bitwise identity across thread counts.
  ASSERT_EQ(a.state.size(), b.state.size());
  EXPECT_EQ(std::memcmp(a.state.data(), b.state.data(),
                        a.state.size() * sizeof(float)),
            0);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].round_time_s, b.records[i].round_time_s)
        << "cycle " << i;
    EXPECT_EQ(a.records[i].num_participants, b.records[i].num_participants)
        << "cycle " << i;
    EXPECT_EQ(a.records[i].uploads_lost, b.records[i].uploads_lost)
        << "cycle " << i;
    EXPECT_EQ(a.records[i].async->inflight, b.records[i].async->inflight)
        << "cycle " << i;
  }
}

// --- the FedSU version fence -----------------------------------------------

TEST(VersionFence, AllCurrentDispatchRoundsMatchTheUnversionedPathBitwise) {
  // dispatch_rounds filled with the current model version must be a no-op:
  // no participant predates any speculation phase, so the fence never
  // triggers and the manager's trajectory is bit-identical to the
  // historical (empty dispatch_rounds) call.
  auto drive = [](bool versioned) {
    core::FedSuOptions fedsu_options;
    fedsu_options.t_r = 0.2;
    fedsu_options.t_s = 2.0;
    fedsu_options.warmup = 2;
    fedsu_options.initial_no_check = 2;
    core::FedSuManager manager(2, fedsu_options);
    const std::size_t p = 6;
    std::vector<float> global(p, 0.0f);
    manager.initialize(global);
    std::vector<std::vector<float>> globals;
    for (int r = 0; r < 14; ++r) {
      std::vector<float> submitted(p);
      for (std::size_t j = 0; j < p; ++j) {
        const float amp = 0.01f * static_cast<float>(j + 1) *
                          ((r % 3 == 0) ? 1.25f : 1.0f);
        submitted[j] = global[j] + ((r % 2 == 0) ? amp : -amp);
      }
      compress::RoundContext ctx;
      ctx.round = r;
      ctx.participants = {0, 1};
      if (versioned) ctx.dispatch_rounds = {r, r};  // both trained on current
      std::vector<std::span<const float>> views(
          2, std::span<const float>(submitted));
      global = manager.synchronize(ctx, views).new_global;
      globals.push_back(global);
    }
    return globals;
  };
  const auto unversioned = drive(false);
  const auto versioned = drive(true);
  ASSERT_EQ(unversioned.size(), versioned.size());
  for (std::size_t r = 0; r < unversioned.size(); ++r) {
    EXPECT_EQ(std::memcmp(unversioned[r].data(), versioned[r].data(),
                          unversioned[r].size() * sizeof(float)),
              0)
        << "diverged at round " << r;
  }
}

TEST(VersionFence, RejectsMismatchedDispatchRounds) {
  core::FedSuManager manager(2);
  std::vector<float> global(4, 0.0f);
  manager.initialize(global);
  std::vector<float> submitted(4, 0.1f);
  compress::RoundContext ctx;
  ctx.round = 0;
  ctx.participants = {0, 1};
  ctx.dispatch_rounds = {0};  // one entry for two participants
  std::vector<std::span<const float>> views(2,
                                            std::span<const float>(submitted));
  EXPECT_THROW(manager.synchronize(ctx, views), std::invalid_argument);
}

}  // namespace
}  // namespace fedsu::fl
