// tensor/gemm blocked kernels: correctness vs a double-precision reference
// on randomized shapes (including tails and degenerate edges), accumulate
// mode, bitwise thread-count invariance (the DESIGN.md §5b contract, same
// pattern as test_thread_pool.cpp), and the zero-allocation contract of the
// scratch-arena-backed Conv2d/GEMM training path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/scratch_arena.h"
#include "util/thread_pool.h"

// Counts every global operator new so the steady-state training step can be
// shown to allocate nothing beyond its returned tensors. Sanitizer builds
// replace the allocator themselves, so the interposer is compiled out there
// and those tests fall back to arena-level accounting only.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FEDSU_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FEDSU_SANITIZED 1
#endif
#endif
#ifndef FEDSU_SANITIZED
#define FEDSU_COUNT_ALLOCS 1
#endif

#ifdef FEDSU_COUNT_ALLOCS
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // FEDSU_COUNT_ALLOCS

namespace fedsu::tensor {
namespace {

using gemm::Accumulate;
using gemm::Variant;

std::vector<float> random_buffer(std::size_t n, util::Rng& rng) {
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return out;
}

// Double-precision naive reference for all three variants.
std::vector<double> reference(Variant v, int m, int n, int k,
                              const std::vector<float>& a,
                              const std::vector<float>& b) {
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int l = 0; l < k; ++l) {
        double av = 0.0, bv = 0.0;
        switch (v) {
          case Variant::kNN:
            av = a[static_cast<std::size_t>(i) * k + l];
            bv = b[static_cast<std::size_t>(l) * n + j];
            break;
          case Variant::kTN:
            av = a[static_cast<std::size_t>(l) * m + i];
            bv = b[static_cast<std::size_t>(l) * n + j];
            break;
          case Variant::kNT:
            av = a[static_cast<std::size_t>(i) * k + l];
            bv = b[static_cast<std::size_t>(j) * k + l];
            break;
        }
        acc += av * bv;
      }
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

void expect_matches_reference(Variant v, int m, int n, int k) {
  util::Rng rng(static_cast<std::uint64_t>(m) * 1000003 + n * 1009 + k);
  const std::size_t a_size = static_cast<std::size_t>(m) * k;
  const std::size_t b_size = static_cast<std::size_t>(n) * k;
  const std::vector<float> a = random_buffer(a_size, rng);
  const std::vector<float> b = random_buffer(b_size, rng);
  const std::vector<double> ref = reference(v, m, n, k, a, b);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  gemm::sgemm_rows(v, 0, m, m, n, k, a.data(), b.data(), c.data(),
                   Accumulate::kOverwrite);
  // Float accumulation error grows with k; 1e-5 * k is ~100x the expected
  // worst case for inputs in [-1, 1].
  const double tol = 1e-6 * k + 1e-5;
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], tol)
        << "variant " << static_cast<int>(v) << " m=" << m << " n=" << n
        << " k=" << k << " index " << i;
  }
}

TEST(Gemm, MatchesReferenceAcrossShapesAndVariants) {
  // Tile-aligned, tails in every dimension, and unit edges — for every
  // variant. MR=NR=8, MC=64, KC=256, NC=256 in gemm.cpp; shapes straddle
  // all those boundaries.
  const int shapes[][3] = {
      {1, 1, 1},    {1, 7, 5},    {7, 1, 3},    {3, 3, 1},   {8, 8, 8},
      {16, 16, 16}, {9, 17, 33},  {13, 29, 7},  {64, 64, 64}, {65, 63, 31},
      {5, 300, 3},  {2, 9, 500},  {100, 10, 257}, {33, 257, 70},
  };
  for (const auto& s : shapes) {
    for (Variant v : {Variant::kNN, Variant::kTN, Variant::kNT}) {
      expect_matches_reference(v, s[0], s[1], s[2]);
    }
  }
}

TEST(Gemm, AccumulateModeAddsOntoExistingC) {
  const int m = 13, n = 21, k = 40;
  util::Rng rng(7);
  const std::vector<float> a = random_buffer(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = random_buffer(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> base = random_buffer(static_cast<std::size_t>(m) * n, rng);

  std::vector<float> product(static_cast<std::size_t>(m) * n, 0.0f);
  gemm::sgemm_rows(Variant::kNN, 0, m, m, n, k, a.data(), b.data(),
                   product.data(), Accumulate::kOverwrite);
  std::vector<float> accumulated = base;
  gemm::sgemm_rows(Variant::kNN, 0, m, m, n, k, a.data(), b.data(),
                   accumulated.data(), Accumulate::kAdd);
  for (std::size_t i = 0; i < accumulated.size(); ++i) {
    // Single KC block (k < 256), so kAdd is exactly base + product.
    ASSERT_FLOAT_EQ(accumulated[i], base[i] + product[i]) << "index " << i;
  }
}

TEST(Gemm, KZeroOverwritesWithZerosAndAddIsNoOp) {
  std::vector<float> c(12, 3.5f);
  gemm::sgemm_rows(Variant::kNN, 0, 3, 3, 4, 0, nullptr, nullptr, c.data(),
                   Accumulate::kAdd);
  for (float v : c) EXPECT_EQ(v, 3.5f);
  gemm::sgemm_rows(Variant::kNN, 0, 3, 3, 4, 0, nullptr, nullptr, c.data(),
                   Accumulate::kOverwrite);
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

// A row's bits may not depend on which worker computes it or where the
// thread chunk boundaries land (DESIGN.md §5b rule 4). The shape clears the
// 2^20-MAC fan-out threshold so the pooled run really does split rows.
TEST(Gemm, BitwiseIdenticalAcrossThreadCounts) {
  const int m = 96, n = 112, k = 128;
  util::Rng rng(11);
  const std::vector<float> a = random_buffer(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = random_buffer(static_cast<std::size_t>(k) * n, rng);

  std::vector<std::vector<float>> results;
  for (int threads : {1, 3, 8}) {
    util::ThreadPool::set_global_threads(threads);
    std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
    gemm::sgemm(Variant::kNN, m, n, k, a.data(), b.data(), c.data(),
                Accumulate::kOverwrite);
    results.push_back(std::move(c));
  }
  util::ThreadPool::set_global_threads(1);
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(std::memcmp(results[0].data(), results[i].data(),
                          results[0].size() * sizeof(float)),
              0)
        << "GEMM output diverged between 1 thread and variant " << i;
  }
}

TEST(Gemm, MatmulWrappersRouteThroughBlockedKernel) {
  util::Rng rng(3);
  Tensor a({9, 14}, random_buffer(9 * 14, rng));
  Tensor b({14, 11}, random_buffer(14 * 11, rng));
  const Tensor c = matmul(a, b);
  const std::vector<double> ref =
      reference(Variant::kNN, 9, 11, 14, a.vec(), b.vec());
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-4) << "index " << i;
  }

  Tensor at({14, 9}, random_buffer(14 * 9, rng));
  const Tensor ctn = matmul_tn(at, b);
  const std::vector<double> ref_tn =
      reference(Variant::kTN, 9, 11, 14, at.vec(), b.vec());
  for (std::size_t i = 0; i < ctn.size(); ++i) {
    ASSERT_NEAR(ctn[i], ref_tn[i], 1e-4) << "index " << i;
  }

  Tensor bt({11, 14}, random_buffer(11 * 14, rng));
  const Tensor cnt = matmul_nt(a, bt);
  const std::vector<double> ref_nt =
      reference(Variant::kNT, 9, 11, 14, a.vec(), bt.vec());
  for (std::size_t i = 0; i < cnt.size(); ++i) {
    ASSERT_NEAR(cnt[i], ref_nt[i], 1e-4) << "index " << i;
  }
}

}  // namespace
}  // namespace fedsu::tensor

namespace fedsu::nn {
namespace {

// One warmed-up Conv2d training step must not grow any scratch arena and —
// where the allocation interposer is active — must heap-allocate only the
// tensors it returns (the forward activation and backward dx, two vector
// buffers each: shape + data).
TEST(ScratchPath, ConvTrainingStepIsAllocationFreeAfterWarmup) {
  util::Rng rng(5);
  // Small enough that neither the batch loop nor the GEMMs fan out, so the
  // whole step runs on this thread and its arena.
  Conv2d conv(3, 8, 3, rng, /*stride=*/1, /*padding=*/1);
  tensor::Tensor input({2, 3, 12, 12});
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  tensor::Tensor grad({2, 8, 12, 12});
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  auto step = [&] {
    tensor::Tensor out = conv.forward(input, /*train=*/true);
    tensor::Tensor dx = conv.backward(grad);
    return out[0] + dx[0];  // keep both live
  };

  step();  // warm-up: grows the arena and cached_cols_ to steady state

  util::ScratchArena& arena = util::ScratchArena::local();
  const std::size_t grow_before = arena.grow_count();
  const std::size_t capacity_before = arena.capacity_bytes();

#ifdef FEDSU_COUNT_ALLOCS
  const std::size_t alloc_base = g_alloc_count.load();
  step();
  const std::size_t alloc_step2 = g_alloc_count.load() - alloc_base;
  step();
  const std::size_t alloc_step3 = g_alloc_count.load() - alloc_base - alloc_step2;
  // Steady state: identical allocation count per step, and only the
  // returned tensors (out: shape+data, dx: shape+data) plus nothing else.
  EXPECT_EQ(alloc_step2, alloc_step3);
  EXPECT_LE(alloc_step2, 4u);
#else
  step();
  step();
#endif

  EXPECT_EQ(arena.grow_count(), grow_before)
      << "scratch arena grew after warm-up";
  EXPECT_EQ(arena.capacity_bytes(), capacity_before);
}

}  // namespace
}  // namespace fedsu::nn
