// Cross-cutting algorithm invariants — properties the paper's analysis
// (§IV-C, §IV-D) relies on, checked against the actual implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/apf.h"
#include "compress/fedavg.h"
#include "core/fedsu_manager.h"
#include "fl/protocol_factory.h"
#include "util/rng.h"

namespace fedsu {
namespace {

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& states) {
  std::vector<std::span<const float>> v;
  for (const auto& s : states) v.emplace_back(s);
  return v;
}

compress::RoundContext ctx_of(int round, int n) {
  compress::RoundContext ctx;
  ctx.round = round;
  for (int i = 0; i < n; ++i) ctx.participants.push_back(i);
  return ctx;
}

// INVARIANT (Eq. 3 / Eq. 7): while a parameter stays speculative, its
// deviation from the true (would-be synchronized) trajectory is bounded —
// the accumulated error cannot exceed T_S * |slope| by more than one
// no-checking period's worth of drift before the parameter is ejected.
TEST(Invariants, FedSuDeviationStaysBounded) {
  core::FedSuOptions options;
  options.warmup = 3;
  options.t_s = 2.0;
  options.initial_no_check = 2;
  core::FedSuManager manager(1, options);
  std::vector<float> global{0.0f};
  manager.initialize(global);

  util::Rng rng(13);
  const float slope = 0.125f;
  double true_value = 0.0;
  float manager_value = 0.0f;
  double steady_deviation = 0.0;   // while the pattern genuinely holds
  double transient_deviation = 0.0;  // across the slope flip
  double final_deviation = 0.0;
  // Linear trajectory with mild noise, then a slope flip at round 40. Three
  // claims: (a) while the pattern holds, deviation stays ~T_S * |slope|;
  // (b) at the flip, drift is bounded by one no-checking period's worth of
  // slope error (periods have grown to ~8 by round 40 -> |drift| <= ~2.5);
  // (c) the correction snaps the value back, so the run ENDS near the true
  // trajectory (v1 without feedback would drift without bound).
  for (int r = 0; r < 80; ++r) {
    const float current_slope = (r < 40) ? slope : -slope;
    true_value += current_slope;
    const float noise = static_cast<float>(0.01 * rng.normal());
    std::vector<std::vector<float>> states{{manager_value + current_slope +
                                            noise}};
    compress::RoundContext ctx = ctx_of(r, 1);
    manager_value = manager.synchronize(ctx, views(states)).new_global[0];
    const double dev =
        std::fabs(static_cast<double>(manager_value) - true_value);
    if (r < 40) steady_deviation = std::max(steady_deviation, dev);
    transient_deviation = std::max(transient_deviation, dev);
    if (r == 79) final_deviation = dev;
  }
  EXPECT_LT(steady_deviation, 0.3);      // ~T_S * |slope| = 0.25
  EXPECT_LT(transient_deviation, 2.6);   // one grown period of wrong slope
  EXPECT_LT(final_deviation, 0.3);       // correction rejoined the trajectory
}

// INVARIANT: FedAvg's aggregation is exactly the arithmetic mean — the
// contract all other schemes' deltas are measured against.
TEST(Invariants, FedAvgIsExactMean) {
  compress::FedAvg proto;
  util::Rng rng(7);
  std::vector<float> global(64, 0.0f);
  proto.initialize(global);
  std::vector<std::vector<float>> states(5, std::vector<float>(64));
  for (auto& s : states) {
    for (auto& v : s) v = static_cast<float>(rng.normal());
  }
  const auto result = proto.synchronize(ctx_of(0, 5), views(states));
  for (std::size_t j = 0; j < 64; ++j) {
    double mean = 0.0;
    for (const auto& s : states) mean += s[j];
    mean /= 5.0;
    EXPECT_NEAR(result.new_global[j], mean, 1e-6);
  }
}

// INVARIANT: every protocol returns byte vectors sized to the participant
// count and a global state of unchanged dimension, for any participant
// subset (the simulator's earliest-70% selection varies per round).
TEST(Invariants, ProtocolsHandleVaryingParticipantSubsets) {
  util::Rng rng(21);
  for (const auto& name : fl::known_protocols()) {
    fl::ProtocolConfig config;
    config.name = name;
    config.num_clients = 6;
    auto proto = fl::make_protocol(config);
    std::vector<float> global(32, 0.0f);
    proto->initialize(global);
    for (int round = 0; round < 6; ++round) {
      // Rotate through subsets of size 2..5 with varying membership.
      const int n = 2 + round % 4;
      compress::RoundContext ctx;
      ctx.round = round;
      std::vector<std::vector<float>> states;
      for (int i = 0; i < n; ++i) {
        ctx.participants.push_back((round + i * 2) % 6);
        std::vector<float> s(32);
        for (auto& v : s) v = static_cast<float>(0.1 * rng.normal());
        states.push_back(std::move(s));
      }
      const auto result = proto->synchronize(ctx, views(states));
      ASSERT_EQ(result.new_global.size(), 32u) << name;
      ASSERT_EQ(result.bytes_up.size(), static_cast<std::size_t>(n)) << name;
      ASSERT_EQ(result.bytes_down.size(), static_cast<std::size_t>(n)) << name;
    }
  }
}

// INVARIANT: sparsification ratios are in [0, 1] for every protocol on
// every round.
TEST(Invariants, SparsificationRatioInUnitInterval) {
  util::Rng rng(22);
  for (const auto& name : fl::known_protocols()) {
    fl::ProtocolConfig config;
    config.name = name;
    config.num_clients = 3;
    auto proto = fl::make_protocol(config);
    std::vector<float> global(16, 0.0f);
    proto->initialize(global);
    std::vector<float> state(16, 0.0f);
    for (int round = 0; round < 15; ++round) {
      for (auto& v : state) v += 0.125f + static_cast<float>(0.01 * rng.normal());
      std::vector<std::vector<float>> states{state, state, state};
      (void)proto->synchronize(ctx_of(round, 3), views(states));
      const double ratio = proto->last_sparsification_ratio();
      EXPECT_GE(ratio, 0.0) << name << " round " << round;
      EXPECT_LE(ratio, 1.0) << name << " round " << round;
    }
  }
}

// INVARIANT: APF freezing never changes a frozen value — frozen parameters
// hold exactly still between syncs (they are excluded from updates).
TEST(Invariants, ApfFrozenValuesHoldStill) {
  compress::ApfOptions options;
  options.warmup_rounds = 1;
  options.ema_decay = 0.98;
  compress::Apf proto(options);
  std::vector<float> global{0.0f};
  proto.initialize(global);
  float prev = 0.0f;
  for (int r = 0; r < 40; ++r) {
    const float zigzag = (r % 2 == 0) ? 0.1f : -0.1f;
    std::vector<std::vector<float>> states{{zigzag}};
    const auto result = proto.synchronize(ctx_of(r, 1), views(states));
    if (result.bytes_up[0] == 0) {
      EXPECT_EQ(result.new_global[0], prev) << "frozen value moved at " << r;
    }
    prev = result.new_global[0];
  }
}

// INVARIANT: FedSU byte accounting equals scalars * 4 per client, and the
// dense-sync cost is an upper bound in every round.
TEST(Invariants, FedSuNeverCostsMoreThanFedAvg) {
  core::FedSuOptions options;
  options.warmup = 3;
  core::FedSuManager manager(2, options);
  const std::size_t p = 50;
  std::vector<float> global(p, 0.0f);
  manager.initialize(global);
  util::Rng rng(31);
  std::vector<float> state(p, 0.0f);
  for (int r = 0; r < 40; ++r) {
    for (std::size_t j = 0; j < p; ++j) {
      state[j] += (j % 2 == 0) ? 0.125f
                               : static_cast<float>(0.05 * rng.normal());
    }
    std::vector<std::vector<float>> states{state, state};
    const auto result = manager.synchronize(ctx_of(r, 2), views(states));
    // Upper bound: dense sync ships p scalars; FedSU ships unpredictable +
    // expiring, and a parameter is never both in one round.
    EXPECT_LE(result.bytes_up[0], p * sizeof(float));
    const auto& diag = manager.last_round_diagnostics();
    EXPECT_EQ(result.bytes_up[0],
              (diag.unpredictable + diag.expiring) * sizeof(float));
  }
}

}  // namespace
}  // namespace fedsu
