#include <gtest/gtest.h>

#include <cmath>

#include "core/oscillation.h"
#include "util/rng.h"

namespace fedsu::core {
namespace {

// Feeds the tracker the first differences of a value sequence.
double feed_values(OscillationTracker& tracker, std::size_t j,
                   const std::vector<double>& values) {
  double r = 1.0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    r = tracker.observe(j, static_cast<float>(values[i] - values[i - 1]));
  }
  return r;
}

TEST(Oscillation, PerfectlyLinearGivesZero) {
  OscillationTracker tracker(1);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(3.0 + 0.5 * i);
  const double r = feed_values(tracker, 0, values);
  EXPECT_NEAR(r, 0.0, 1e-6);
  EXPECT_TRUE(tracker.ready(0));
}

TEST(Oscillation, NoisyLinearStaysSmall) {
  OscillationTracker tracker(1);
  util::Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(1.0 + 0.2 * i + 0.01 * rng.normal());
  }
  const double r = feed_values(tracker, 0, values);
  EXPECT_LT(r, 0.5);  // noise second-differences oscillate around 0
}

TEST(Oscillation, AcceleratingTrajectoryIsNotLinear) {
  OscillationTracker tracker(1);
  std::vector<double> values;
  for (int i = 0; i < 30; ++i) values.push_back(0.01 * i * i);
  const double r = feed_values(tracker, 0, values);
  // Second differences are constant-positive: |EMA| == EMA(|.|) -> R ~ 1.
  EXPECT_GT(r, 0.9);
}

TEST(Oscillation, ExponentialDecayIsNotLinear) {
  OscillationTracker tracker(1);
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) values.push_back(std::exp(-0.2 * i));
  const double r = feed_values(tracker, 0, values);
  EXPECT_GT(r, 0.5);
}

TEST(Oscillation, StagnationIsPerfectlyLinear) {
  // APF's "converged" pattern is the slope-0 special case (§II-B).
  OscillationTracker tracker(1);
  std::vector<double> values(20, 4.2);
  const double r = feed_values(tracker, 0, values);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Oscillation, NotReadyBeforeWarmup) {
  OscillationOptions options;
  options.warmup = 5;
  OscillationTracker tracker(1, options);
  tracker.observe(0, 1.0f);  // primes g_prev
  for (int i = 0; i < 4; ++i) {
    tracker.observe(0, 1.0f);
    EXPECT_FALSE(tracker.ready(0));
  }
  tracker.observe(0, 1.0f);
  EXPECT_TRUE(tracker.ready(0));
}

TEST(Oscillation, RatioIsOneBeforeAnySecondDifference) {
  OscillationTracker tracker(2);
  EXPECT_DOUBLE_EQ(tracker.ratio(0), 1.0);
  tracker.observe(0, 0.5f);
  EXPECT_DOUBLE_EQ(tracker.ratio(0), 1.0);
}

TEST(Oscillation, ResetForgetsHistory) {
  OscillationTracker tracker(1);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(0.5 * i);
  feed_values(tracker, 0, values);
  EXPECT_TRUE(tracker.ready(0));
  tracker.reset(0);
  EXPECT_FALSE(tracker.ready(0));
  EXPECT_DOUBLE_EQ(tracker.ratio(0), 1.0);
}

TEST(Oscillation, IndependentParameters) {
  OscillationTracker tracker(2);
  for (int i = 0; i < 20; ++i) {
    tracker.observe(0, 0.5f);                              // linear
    tracker.observe(1, (i % 2 == 0) ? 1.0f : -1.0f);       // alternating g
  }
  EXPECT_LT(tracker.ratio(0), 0.01);
  // Alternating gradient: g2 = +/-2 alternating -> |EMA| << EMA|.| -> small R
  // too... but the alternation makes successive g2 cancel. Verify it is at
  // least far from the quadratic case.
  EXPECT_LT(tracker.ratio(1), 0.5);
}

TEST(Oscillation, BoundsAndErrors) {
  OscillationTracker tracker(1);
  EXPECT_THROW(tracker.observe(5, 1.0f), std::out_of_range);
  EXPECT_THROW(tracker.ratio(5), std::out_of_range);
  EXPECT_THROW(tracker.reset(5), std::out_of_range);
  OscillationOptions bad;
  bad.ema_decay = 1.5;
  EXPECT_THROW(OscillationTracker(1, bad), std::invalid_argument);
  bad.ema_decay = 0.9;
  bad.warmup = 0;
  EXPECT_THROW(OscillationTracker(1, bad), std::invalid_argument);
}

TEST(Oscillation, StateBytesIsConstantPerParameter) {
  OscillationTracker small(10);
  OscillationTracker large(1000);
  EXPECT_EQ(large.state_bytes(), 100 * small.state_bytes());
}

// Property sweep: for pure sinusoidal gradients of varying frequency, R must
// stay clearly above the linearity threshold; for linear-plus-noise with
// shrinking noise, R must shrink towards 0.
class OscillationNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(OscillationNoiseSweep, NoiseControlsRatioScale) {
  const double noise = GetParam();
  OscillationTracker tracker(1);
  util::Rng rng(42);
  double r = 1.0;
  double value = 0.0;
  for (int i = 0; i < 300; ++i) {
    value += 0.1 + noise * rng.normal();
    r = tracker.observe(0, static_cast<float>(
                               0.1 + noise * rng.normal()));
  }
  if (noise <= 1e-6) {
    EXPECT_LT(r, 1e-4);
  } else {
    // With i.i.d. noise the EMA of g' concentrates near 0 while EMA|g'| does
    // not: R stays bounded away from 1.
    EXPECT_LT(r, 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, OscillationNoiseSweep,
                         ::testing::Values(0.0, 1e-4, 1e-2, 1e-1, 1.0));

// Property sweep over EMA decay: the ratio of a linear trajectory must be
// ~0 regardless of theta.
class OscillationDecaySweep : public ::testing::TestWithParam<double> {};

TEST_P(OscillationDecaySweep, LinearAlwaysDiagnosedLinear) {
  OscillationOptions options;
  options.ema_decay = GetParam();
  OscillationTracker tracker(1, options);
  double r = 1.0;
  for (int i = 0; i < 50; ++i) r = tracker.observe(0, 0.25f);
  EXPECT_LT(r, 1e-6) << "theta=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Decays, OscillationDecaySweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.99));

}  // namespace
}  // namespace fedsu::core
