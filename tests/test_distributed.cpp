// Equivalence of the distributed Algorithm 1 decomposition (per-client
// FedSuClientManager + FedSuServer) with the centralized FedSuManager, plus
// unit behaviour of payload shaping and divergence detection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed.h"
#include "core/fedsu_manager.h"
#include "util/rng.h"

namespace fedsu::core {
namespace {

FedSuOptions test_options() {
  FedSuOptions options;
  options.warmup = 3;
  options.t_r = 0.05;
  options.t_s = 2.0;
  options.initial_no_check = 2;
  return options;
}

TEST(FedSuServer, PositionalAveraging) {
  FedSuServer server;
  FedSuUpload a, b;
  a.unpredictable_values = {1.0f, 3.0f};
  b.unpredictable_values = {3.0f, 5.0f};
  a.expiring_errors = {0.2f};
  b.expiring_errors = {0.4f};
  const FedSuDownload down = server.aggregate({a, b});
  EXPECT_FLOAT_EQ(down.aggregated_values[0], 2.0f);
  EXPECT_FLOAT_EQ(down.aggregated_values[1], 4.0f);
  EXPECT_NEAR(down.aggregated_errors[0], 0.3f, 1e-7);
}

TEST(FedSuServer, RejectsDivergedMasks) {
  FedSuServer server;
  FedSuUpload a, b;
  a.unpredictable_values = {1.0f, 2.0f};
  b.unpredictable_values = {1.0f};  // a client with a different mask
  EXPECT_THROW(server.aggregate({a, b}), std::invalid_argument);
  EXPECT_THROW(server.aggregate({}), std::invalid_argument);
}

TEST(FedSuClientManager, SyncHandshakeEnforced) {
  FedSuClientManager manager(2, test_options());
  std::vector<float> state{0.1f, 0.2f};
  manager.initialize(std::vector<float>{0.0f, 0.0f});
  (void)manager.begin_sync(state);
  EXPECT_THROW(manager.begin_sync(state), std::logic_error);
  FedSuDownload down;
  down.aggregated_values = {0.1f, 0.2f};
  (void)manager.finish_sync(down);
  EXPECT_THROW(manager.finish_sync(down), std::logic_error);
}

TEST(FedSuClientManager, UploadShapeTracksMask) {
  FedSuClientManager manager(3, test_options());
  manager.initialize(std::vector<float>{0.0f, 0.0f, 0.0f});
  std::vector<float> state{0.1f, 0.2f, 0.3f};
  const FedSuUpload upload = manager.begin_sync(state);
  // No parameters predictable yet: full upload, no errors.
  EXPECT_EQ(upload.unpredictable_values.size(), 3u);
  EXPECT_TRUE(upload.expiring_errors.empty());
  EXPECT_EQ(upload.wire_bytes(), 12u);
}

TEST(FedSuClientManager, RejectsMismatchedDownload) {
  FedSuClientManager manager(2, test_options());
  manager.initialize(std::vector<float>{0.0f, 0.0f});
  std::vector<float> state{0.1f, 0.2f};
  (void)manager.begin_sync(state);
  FedSuDownload down;
  down.aggregated_values = {0.1f};  // too short
  EXPECT_THROW(manager.finish_sync(down), std::invalid_argument);
}

// The heart of §V: N client managers + positional server == centralized
// manager, bit for bit, under full participation.
TEST(Distributed, MatchesCentralizedBitForBit) {
  const std::size_t p = 12;
  const int clients = 3;
  const FedSuOptions options = test_options();

  FedSuManager centralized(clients, options);
  std::vector<float> global(p, 0.0f);
  centralized.initialize(global);

  FedSuServer server;
  std::vector<FedSuClientManager> managers;
  for (int i = 0; i < clients; ++i) {
    managers.emplace_back(p, options);
    managers.back().initialize(global);
  }

  util::Rng rng(33);
  std::vector<float> central_state = global;
  // Mixed per-parameter behaviours: linear, stagnating, random, and a
  // regime switch halfway.
  for (int round = 0; round < 50; ++round) {
    std::vector<std::vector<float>> locals(clients);
    for (int i = 0; i < clients; ++i) {
      locals[i].resize(p);
      for (std::size_t j = 0; j < p; ++j) {
        float drift;
        switch (j % 4) {
          case 0:
            drift = 0.125f;
            break;
          case 1:
            drift = 0.0f;
            break;
          case 2:
            drift = static_cast<float>(0.2 * rng.normal());
            break;
          default:
            drift = (round < 25) ? 0.0625f : -0.0625f;
            break;
        }
        // Same local value for all clients relative to the shared global:
        // client-level noise identical across managers vs centralized run.
        locals[i][j] = central_state[j] + drift +
                       static_cast<float>(0.01 * ((i + 1) % clients));
      }
    }

    // Centralized step.
    compress::RoundContext ctx;
    ctx.round = round;
    std::vector<std::span<const float>> views;
    for (int i = 0; i < clients; ++i) {
      ctx.participants.push_back(i);
      views.emplace_back(locals[static_cast<std::size_t>(i)]);
    }
    const auto central_result = centralized.synchronize(ctx, views);

    // Distributed step.
    std::vector<FedSuUpload> uploads;
    for (int i = 0; i < clients; ++i) {
      uploads.push_back(
          managers[static_cast<std::size_t>(i)].begin_sync(
              locals[static_cast<std::size_t>(i)]));
    }
    // All clients must have produced identically-shaped payloads and the
    // centralized byte accounting must match the distributed wire size.
    ASSERT_EQ(uploads[0].wire_bytes(), central_result.bytes_up[0])
        << "round " << round;
    const FedSuDownload download = server.aggregate(uploads);
    std::vector<std::vector<float>> next_states;
    for (int i = 0; i < clients; ++i) {
      next_states.push_back(
          managers[static_cast<std::size_t>(i)].finish_sync(download));
    }

    // Every client computed the same next state, equal to the centralized
    // one; masks agree too.
    for (int i = 0; i < clients; ++i) {
      ASSERT_EQ(next_states[static_cast<std::size_t>(i)],
                central_result.new_global)
          << "client " << i << " round " << round;
      ASSERT_EQ(managers[static_cast<std::size_t>(i)].predictable_mask(),
                centralized.predictable_mask())
          << "client " << i << " round " << round;
    }
    central_state = central_result.new_global;
  }
  // The run must have actually exercised speculation.
  EXPECT_GT(centralized.predictable_fraction(), 0.2);
}

TEST(Distributed, SpeculationReducesWireBytes) {
  const std::size_t p = 10;
  const FedSuOptions options = test_options();
  FedSuServer server;
  FedSuClientManager manager(p, options);
  manager.initialize(std::vector<float>(p, 0.0f));
  std::vector<float> state(p, 0.0f);
  std::size_t first_bytes = 0, last_bytes = 0;
  for (int round = 0; round < 30; ++round) {
    for (auto& v : state) v += 0.125f;  // perfectly linear everywhere
    const FedSuUpload upload = manager.begin_sync(state);
    if (round == 0) first_bytes = upload.wire_bytes();
    last_bytes = upload.wire_bytes();
    const FedSuDownload download = server.aggregate({upload});
    state = manager.finish_sync(download);
  }
  EXPECT_EQ(first_bytes, p * sizeof(float));
  EXPECT_LT(last_bytes, first_bytes / 2);
}

}  // namespace
}  // namespace fedsu::core
