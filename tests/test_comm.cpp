// Communication-path overhaul (DESIGN.md §15): the measure/encode split,
// the payload-audit mode, §5b bitwise identity of every parallelized
// protocol across thread counts, the sparse Top-K residual store against a
// dense reference (including rejoin slab release and the ±0.0 edge), the
// Top-K snapshot round-trip, and the steady-state allocation budget of the
// Top-K round loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "compress/protocol.h"
#include "compress/topk.h"
#include "compress/wire.h"
#include "fl/protocol_factory.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// Counts every global operator new so the steady-state Top-K round can be
// shown to allocate nothing beyond its returned SyncResult vectors.
// Sanitizer builds replace the allocator themselves, so the interposer is
// compiled out there (test_gemm.cpp idiom).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FEDSU_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FEDSU_SANITIZED 1
#endif
#endif
#ifndef FEDSU_SANITIZED
#define FEDSU_COUNT_ALLOCS 1
#endif

#ifdef FEDSU_COUNT_ALLOCS
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // FEDSU_COUNT_ALLOCS

namespace fedsu::compress {
namespace {

// --- measure_* == encode_*().size(), exhaustively over edge shapes -------

TEST(WireSizing, DenseMatchesEncoder) {
  for (std::size_t count = 0; count <= 65; ++count) {
    std::vector<float> values(count, 0.5f);
    EXPECT_EQ(wire::measure_dense(count), wire::encode_dense(values).size())
        << "count=" << count;
  }
  std::vector<float> big(100000, 1.0f);
  EXPECT_EQ(wire::measure_dense(big.size()), wire::encode_dense(big).size());
}

TEST(WireSizing, SparseMatchesEncoder) {
  for (std::size_t count = 0; count <= 65; ++count) {
    std::vector<std::uint32_t> indices(count);
    std::vector<float> values(count, -2.0f);
    for (std::size_t i = 0; i < count; ++i) {
      indices[i] = static_cast<std::uint32_t>(i);
    }
    EXPECT_EQ(wire::measure_sparse(count),
              wire::encode_sparse(indices, values).size())
        << "count=" << count;
  }
}

TEST(WireSizing, SignsMatchesEncoder) {
  // Straddles every byte boundary: 0..65 covers counts {8k-1, 8k, 8k+1}.
  for (std::size_t count = 0; count <= 65; ++count) {
    std::vector<std::uint8_t> signs(count, 1);
    EXPECT_EQ(wire::measure_signs(count),
              wire::encode_signs(signs, 0.25f).size())
        << "count=" << count;
  }
}

TEST(WireSizing, QuantizedMatchesEncoderForEveryBitWidth) {
  for (int bits = 1; bits <= 16; ++bits) {
    const std::int32_t max_level = (1 << (bits - 1)) - 1;
    for (std::size_t count = 0; count <= 33; ++count) {
      std::vector<std::int32_t> levels(count, max_level);
      EXPECT_EQ(wire::measure_quantized(count, bits),
                wire::encode_quantized(levels, bits, 1.5f).size())
          << "bits=" << bits << " count=" << count;
    }
  }
}

// --- payload audit -------------------------------------------------------

// Restores the audit flag even when an assertion fails mid-test.
struct AuditGuard {
  explicit AuditGuard(bool enabled) { wire::set_payload_audit(enabled); }
  ~AuditGuard() { wire::set_payload_audit(false); }
};

TEST(PayloadAudit, MismatchThrows) {
  EXPECT_NO_THROW(wire::audit_bytes("x", 8, 8));
  EXPECT_THROW(wire::audit_bytes("x", 8, 12), std::logic_error);
}

std::vector<std::vector<float>> random_states(std::size_t n, std::size_t p,
                                              const util::Rng& round_rng) {
  std::vector<std::vector<float>> states(n, std::vector<float>(p));
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng rng = round_rng.fork(i + 1);
    for (std::size_t j = 0; j < p; ++j) {
      states[i][j] = static_cast<float>(rng.normal() * 0.1);
    }
  }
  return states;
}

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& states) {
  std::vector<std::span<const float>> v;
  v.reserve(states.size());
  for (const auto& s : states) v.emplace_back(s);
  return v;
}

RoundContext ctx_of(int round, int n) {
  RoundContext ctx;
  ctx.round = round;
  for (int i = 0; i < n; ++i) ctx.participants.push_back(i);
  return ctx;
}

// With auditing on, every protocol re-encodes its representative payloads
// and cross-checks them against the measured sizes each round; any drift
// between the measure_* formulas and the encoders throws out of here.
TEST(PayloadAudit, EveryProtocolMeasuresItsEncodedSize) {
  const AuditGuard guard(true);
  const int n = 5;
  const std::size_t p = 97;  // odd size: exercises the sub-byte tails
  const util::Rng base(7);
  for (const std::string& scheme :
       {"fedavg", "cmfl", "apf", "topk", "qsgd", "signsgd", "fedsu"}) {
    fl::ProtocolConfig config;
    config.name = scheme;
    config.num_clients = n;
    auto protocol = fl::make_protocol(config);
    std::vector<float> global(p, 0.0f);
    protocol->initialize(global);
    for (int round = 0; round < 4; ++round) {
      const auto states = random_states(n, p, base.fork(round + 1));
      EXPECT_NO_THROW(protocol->synchronize(ctx_of(round, n), views(states)))
          << scheme << " round " << round;
    }
  }
}

// --- §5b: bitwise identity across thread counts --------------------------

struct RunTrace {
  std::vector<std::vector<float>> globals;
  std::vector<std::size_t> bytes_up, bytes_down, scalars_up, scalars_down;
};

RunTrace run_protocol(const std::string& scheme, int n, std::size_t p,
                      int rounds) {
  fl::ProtocolConfig config;
  config.name = scheme;
  config.num_clients = n;
  auto protocol = fl::make_protocol(config);
  std::vector<float> global(p, 0.0f);
  protocol->initialize(global);
  RunTrace trace;
  const util::Rng base(11);
  for (int round = 0; round < rounds; ++round) {
    const auto states =
        random_states(static_cast<std::size_t>(n), p, base.fork(round + 1));
    const auto result = protocol->synchronize(ctx_of(round, n), views(states));
    trace.globals.push_back(result.new_global);
    trace.bytes_up.push_back(result.bytes_up[0]);
    trace.bytes_down.push_back(result.bytes_down[0]);
    trace.scalars_up.push_back(result.scalars_up);
    trace.scalars_down.push_back(result.scalars_down);
  }
  return trace;
}

void expect_bitwise(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(ThreadInvariance, EveryProtocolBitwiseAcrossThreadCounts) {
  // 40 clients spans two 32-wide reduction blocks; 514 parameters is not a
  // multiple of any chunking grain.
  const int n = 40;
  const std::size_t p = 514;
  const int rounds = 3;
  for (const std::string& scheme :
       {"fedavg", "cmfl", "apf", "topk", "qsgd", "signsgd", "fedsu"}) {
    util::ThreadPool::set_global_threads(1);
    const RunTrace serial = run_protocol(scheme, n, p, rounds);
    for (int threads : {4, 8}) {
      util::ThreadPool::set_global_threads(threads);
      const RunTrace parallel = run_protocol(scheme, n, p, rounds);
      for (int r = 0; r < rounds; ++r) {
        expect_bitwise(serial.globals[r], parallel.globals[r]);
      }
      EXPECT_EQ(serial.bytes_up, parallel.bytes_up) << scheme;
      EXPECT_EQ(serial.bytes_down, parallel.bytes_down) << scheme;
      EXPECT_EQ(serial.scalars_up, parallel.scalars_up) << scheme;
      EXPECT_EQ(serial.scalars_down, parallel.scalars_down) << scheme;
    }
  }
  util::ThreadPool::set_global_threads(1);
}

// --- sparse residual store vs the dense reference ------------------------

// The pre-overhaul Top-K server: one dense residual vector per client,
// allocated up front. Selection and aggregation follow the same
// threshold-then-scan rule as the production path so the only difference
// under test is the residual representation.
class DenseTopKRef {
 public:
  DenseTopKRef(int n, std::size_t p, double fraction)
      : fraction_(fraction), global_(p, 0.0f),
        residual_(static_cast<std::size_t>(n), std::vector<float>(p, 0.0f)) {}

  void initialize(std::span<const float> global) {
    global_.assign(global.begin(), global.end());
  }

  void clear_residual(int client) {
    std::fill(residual_[static_cast<std::size_t>(client)].begin(),
              residual_[static_cast<std::size_t>(client)].end(), 0.0f);
  }

  std::vector<float> step(const std::vector<std::span<const float>>& states) {
    const std::size_t p = global_.size();
    const std::size_t n = states.size();
    const std::size_t k = std::min(
        p, std::max<std::size_t>(
               1, static_cast<std::size_t>(
                      std::llround(fraction_ * static_cast<double>(p)))));
    std::vector<double> agg(p, 0.0);
    std::vector<char> touched(p, 0);
    std::vector<float> comp(p), mags(p);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<float>& res = residual_[i];
      for (std::size_t j = 0; j < p; ++j) {
        comp[j] = (states[i][j] - global_[j]) + res[j];
      }
      for (std::size_t j = 0; j < p; ++j) mags[j] = std::fabs(comp[j]);
      std::nth_element(mags.begin(), mags.begin() + (k - 1), mags.end(),
                       std::greater<float>());
      const float threshold = mags[k - 1];
      // The production two-scan rule: strictly-above first, then ties at
      // the threshold by ascending index until k entries are taken.
      std::vector<std::uint32_t> idx;
      idx.reserve(k);
      for (std::size_t j = 0; j < p; ++j) {
        if (std::fabs(comp[j]) > threshold) {
          idx.push_back(static_cast<std::uint32_t>(j));
        }
      }
      for (std::size_t j = 0; j < p && idx.size() < k; ++j) {
        if (std::fabs(comp[j]) == threshold) {
          idx.push_back(static_cast<std::uint32_t>(j));
        }
      }
      res = comp;
      for (const std::uint32_t j : idx) {
        agg[j] += comp[j];
        touched[j] = 1;
        res[j] = 0.0f;
      }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < p; ++j) {
      if (touched[j]) {
        global_[j] = static_cast<float>(global_[j] + agg[j] * inv_n);
      }
    }
    return global_;
  }

  const std::vector<float>& residual(int client) const {
    return residual_[static_cast<std::size_t>(client)];
  }

 private:
  double fraction_;
  std::vector<float> global_;
  std::vector<std::vector<float>> residual_;
};

TEST(SparseResidual, MatchesDenseReferenceOverRounds) {
  const int n = 6;
  const std::size_t p = 128;
  const double fraction = 0.1;
  TopK sparse(n, {fraction});
  DenseTopKRef dense(n, p, fraction);
  std::vector<float> global(p, 0.0f);
  sparse.initialize(global);
  dense.initialize(global);
  const util::Rng base(23);
  for (int round = 0; round < 5; ++round) {
    const auto states =
        random_states(static_cast<std::size_t>(n), p, base.fork(round + 1));
    const auto result = sparse.synchronize(ctx_of(round, n), views(states));
    const auto ref_global = dense.step(views(states));
    expect_bitwise(result.new_global, ref_global);
  }
  // Continuous random data leaves every client with residual mass, so every
  // slab is resident — sparsity comes from churn, not from the data.
  EXPECT_EQ(sparse.resident_residual_slabs(), static_cast<std::size_t>(n));
}

TEST(SparseResidual, RejoinReleasesSlabAndMatchesZeroedReference) {
  const int n = 4;
  const std::size_t p = 96;
  const double fraction = 0.15;
  TopK sparse(n, {fraction});
  DenseTopKRef dense(n, p, fraction);
  std::vector<float> global(p, 0.0f);
  sparse.initialize(global);
  dense.initialize(global);
  const util::Rng base(31);
  for (int round = 0; round < 3; ++round) {
    const auto states =
        random_states(static_cast<std::size_t>(n), p, base.fork(round + 1));
    sparse.synchronize(ctx_of(round, n), views(states));
    dense.step(views(states));
  }
  ASSERT_EQ(sparse.resident_residual_slabs(), static_cast<std::size_t>(n));
  // Client 2 rejoins after a crash: its slab is released (stale error
  // feedback), which the dense world models as zeroing the residual.
  EXPECT_EQ(sparse.on_client_rejoin(2), 0u);
  EXPECT_EQ(sparse.resident_residual_slabs(), static_cast<std::size_t>(n - 1));
  dense.clear_residual(2);
  for (int round = 3; round < 6; ++round) {
    const auto states =
        random_states(static_cast<std::size_t>(n), p, base.fork(round + 1));
    const auto result = sparse.synchronize(ctx_of(round, n), views(states));
    const auto ref_global = dense.step(views(states));
    expect_bitwise(result.new_global, ref_global);
  }
}

TEST(SparseResidual, NegativeZeroResidualStaysSlabless) {
  // comp = {1, -0.0, 0, 0}: index 0 is selected (k = 1), and the leftover
  // mass is all ±0.0 — representable by an absent slab, bit-identically to
  // a dense zero vector in every later compensation (x + ±0.0 never changes
  // a later update).
  TopK sparse(1, {0.25});
  std::vector<float> global{0.0f, 0.0f, 0.0f, 0.0f};
  sparse.initialize(global);
  std::vector<std::vector<float>> states{{1.0f, -0.0f, 0.0f, 0.0f}};
  const auto result = sparse.synchronize(ctx_of(0, 1), views(states));
  EXPECT_EQ(sparse.resident_residual_slabs(), 0u);
  EXPECT_FLOAT_EQ(result.new_global[0], 1.0f);
  // A later round with real leftover mass materializes the slab.
  states[0] = {2.0f, 0.5f, 0.0f, 0.0f};
  sparse.synchronize(ctx_of(1, 1), views(states));
  EXPECT_EQ(sparse.resident_residual_slabs(), 1u);
}

TEST(SparseResidual, SnapshotRestoreRoundTrip) {
  const int n = 5;
  const std::size_t p = 64;
  TopK original(n, {0.2});
  std::vector<float> global(p, 0.0f);
  original.initialize(global);
  const util::Rng base(41);
  for (int round = 0; round < 3; ++round) {
    const auto states =
        random_states(static_cast<std::size_t>(n), p, base.fork(round + 1));
    original.synchronize(ctx_of(round, n), views(states));
  }
  const auto snap = original.snapshot();

  TopK restored(n, {0.2});
  restored.restore(snap);
  EXPECT_EQ(restored.resident_residual_slabs(),
            original.resident_residual_slabs());
  for (int round = 3; round < 5; ++round) {
    const auto states =
        random_states(static_cast<std::size_t>(n), p, base.fork(round + 1));
    const auto a = original.synchronize(ctx_of(round, n), views(states));
    const auto b = restored.synchronize(ctx_of(round, n), views(states));
    expect_bitwise(a.new_global, b.new_global);
  }
}

// --- steady-state allocation budget --------------------------------------

#ifdef FEDSU_COUNT_ALLOCS
TEST(SteadyState, TopKRoundLoopAllocatesOnlyTheResult) {
  util::ThreadPool::set_global_threads(1);
  const int n = 8;
  const std::size_t p = 2048;
  TopK topk(n, {0.1});
  std::vector<float> global(p, 0.0f);
  topk.initialize(global);
  // Pre-sized client states, refreshed in place each round so the harness
  // itself allocates nothing inside the measured window.
  std::vector<std::vector<float>> states(
      static_cast<std::size_t>(n), std::vector<float>(p));
  const auto state_views = views(states);
  const util::Rng base(53);
  RoundContext ctx = ctx_of(0, n);
  const auto run_round = [&](int round) {
    const util::Rng round_rng = base.fork(round + 1);
    for (std::size_t i = 0; i < states.size(); ++i) {
      util::Rng rng = round_rng.fork(i + 1);
      for (std::size_t j = 0; j < p; ++j) {
        states[i][j] = static_cast<float>(rng.normal() * 0.1);
      }
    }
    ctx.round = round;
    return topk.synchronize(ctx, state_views);
  };
  // Warm-up: grows the scratch arena, the selection/aggregation buffers,
  // and materializes every residual slab.
  for (int round = 0; round < 3; ++round) run_round(round);

  const std::size_t base_count = g_alloc_count.load();
  run_round(3);
  const std::size_t round4 = g_alloc_count.load() - base_count;
  run_round(4);
  const std::size_t round5 = g_alloc_count.load() - base_count - round4;
  // Steady state: identical allocation count per round, and only the
  // SyncResult's returned vectors (new_global copy, bytes_up, bytes_down)
  // — nothing from selection, compensation, or aggregation.
  EXPECT_EQ(round4, round5);
  EXPECT_LE(round4, 4u);
}
#endif  // FEDSU_COUNT_ALLOCS

}  // namespace
}  // namespace fedsu::compress
