#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fl/client.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedsu::fl {
namespace {

data::Dataset small_shard(std::uint64_t seed = 3) {
  data::SyntheticSpec spec;
  spec.train_count = 200;
  spec.test_count = 10;
  spec.image_size = 8;
  spec.seed = seed;
  return data::generate_synthetic(spec).train;
}

nn::Model small_model() {
  nn::ModelSpec spec;
  spec.arch = "mlp";
  spec.image_size = 8;
  spec.hidden = 24;
  return nn::build_model(spec, util::Rng(5));
}

TEST(Client, ConstructionAndAccessors) {
  Client client(3, small_shard(), 16, util::Rng(1));
  EXPECT_EQ(client.id(), 3);
  EXPECT_EQ(client.dataset_size(), 200u);
  EXPECT_THROW(Client(-1, small_shard(), 16, util::Rng(1)),
               std::invalid_argument);
}

TEST(Client, TrainRoundMutatesModel) {
  Client client(0, small_shard(), 16, util::Rng(2));
  nn::Model model = small_model();
  const auto before = model.state_vector();
  LocalTrainOptions options;
  options.iterations = 5;
  options.learning_rate = 0.05f;
  const float loss = client.train_round(model, options);
  EXPECT_GT(loss, 0.0f);
  EXPECT_NE(model.state_vector(), before);
}

TEST(Client, RepeatedRoundsReduceLoss) {
  Client client(0, small_shard(), 16, util::Rng(3));
  nn::Model model = small_model();
  LocalTrainOptions options;
  options.iterations = 10;
  options.learning_rate = 0.05f;
  const float first = client.train_round(model, options);
  float last = first;
  for (int r = 0; r < 10; ++r) last = client.train_round(model, options);
  EXPECT_LT(last, 0.7f * first);
}

TEST(Client, ZeroIterationsIsNoOp) {
  Client client(0, small_shard(), 16, util::Rng(4));
  nn::Model model = small_model();
  const auto before = model.state_vector();
  LocalTrainOptions options;
  options.iterations = 0;
  const float loss = client.train_round(model, options);
  EXPECT_EQ(loss, 0.0f);
  EXPECT_EQ(model.state_vector(), before);
}

TEST(Client, DeterministicGivenSameRngAndModel) {
  Client a(0, small_shard(7), 16, util::Rng(9));
  Client b(0, small_shard(7), 16, util::Rng(9));
  nn::Model ma = small_model();
  nn::Model mb = small_model();
  LocalTrainOptions options;
  options.iterations = 6;
  const float la = a.train_round(ma, options);
  const float lb = b.train_round(mb, options);
  EXPECT_EQ(la, lb);
  EXPECT_EQ(ma.state_vector(), mb.state_vector());
}

TEST(Client, DifferentShardsProduceDifferentUpdates) {
  Client a(0, small_shard(7), 16, util::Rng(9));
  Client b(1, small_shard(8), 16, util::Rng(9));
  nn::Model ma = small_model();
  nn::Model mb = small_model();
  LocalTrainOptions options;
  options.iterations = 6;
  a.train_round(ma, options);
  b.train_round(mb, options);
  EXPECT_NE(ma.state_vector(), mb.state_vector());
}

TEST(Client, ProximalTermDampsDrift) {
  // With a huge mu, local training barely moves from the global anchor.
  Client a(0, small_shard(), 16, util::Rng(11));
  Client b(0, small_shard(), 16, util::Rng(11));
  nn::Model free_model = small_model();
  nn::Model anchored_model = small_model();
  const auto start = free_model.state_vector();
  LocalTrainOptions free_opts;
  free_opts.iterations = 10;
  free_opts.learning_rate = 0.05f;
  free_opts.weight_decay = 0.0f;
  LocalTrainOptions prox_opts = free_opts;
  // Stability needs lr * mu < 1 (the proximal pull is a contraction, not an
  // oscillator): lr 0.05 * mu 10 = 0.5.
  prox_opts.proximal_mu = 10.0f;
  a.train_round(free_model, free_opts);
  b.train_round(anchored_model, prox_opts);
  double drift_free = 0.0, drift_prox = 0.0;
  const auto sf = free_model.state_vector();
  const auto sp = anchored_model.state_vector();
  for (std::size_t i = 0; i < start.size(); ++i) {
    drift_free += std::fabs(sf[i] - start[i]);
    drift_prox += std::fabs(sp[i] - start[i]);
  }
  EXPECT_LT(drift_prox, 0.5 * drift_free);
}

TEST(Client, ZeroMuMatchesPlainTraining) {
  Client a(0, small_shard(), 16, util::Rng(12));
  Client b(0, small_shard(), 16, util::Rng(12));
  nn::Model ma = small_model();
  nn::Model mb = small_model();
  LocalTrainOptions opts;
  opts.iterations = 5;
  LocalTrainOptions zero_mu = opts;
  zero_mu.proximal_mu = 0.0f;
  a.train_round(ma, opts);
  b.train_round(mb, zero_mu);
  EXPECT_EQ(ma.state_vector(), mb.state_vector());
}

TEST(Client, WeightDecayShrinksNorm) {
  // With a huge weight decay, the parameter norm must shrink fast.
  Client client(0, small_shard(), 16, util::Rng(10));
  nn::Model model = small_model();
  double norm_before = 0.0;
  for (float v : model.state_vector()) norm_before += std::fabs(v);
  LocalTrainOptions options;
  options.iterations = 10;
  options.learning_rate = 0.05f;
  options.weight_decay = 2.0f;
  client.train_round(model, options);
  double norm_after = 0.0;
  for (float v : model.state_vector()) norm_after += std::fabs(v);
  EXPECT_LT(norm_after, 0.7 * norm_before);
}

}  // namespace
}  // namespace fedsu::fl
