#include <gtest/gtest.h>

#include "core/theory.h"
#include "nn/schedule.h"

namespace fedsu {
namespace {

TEST(Schedule, ConstantIsConstant) {
  nn::ConstantLr schedule(0.05f);
  EXPECT_FLOAT_EQ(schedule.lr(0), 0.05f);
  EXPECT_FLOAT_EQ(schedule.lr(1000), 0.05f);
  EXPECT_THROW(schedule.lr(-1), std::invalid_argument);
  EXPECT_THROW(nn::ConstantLr(0.0f), std::invalid_argument);
}

TEST(Schedule, InverseSqrtDecays) {
  nn::InverseSqrtLr schedule(0.1f);
  EXPECT_FLOAT_EQ(schedule.lr(0), 0.1f);
  EXPECT_NEAR(schedule.lr(3), 0.05f, 1e-6);
  EXPECT_NEAR(schedule.lr(99), 0.01f, 1e-6);
  EXPECT_GT(schedule.lr(10), schedule.lr(11));
}

TEST(Schedule, InverseSqrtWarmupRampsLinearly) {
  nn::InverseSqrtLr schedule(0.1f, /*warmup=*/4);
  EXPECT_NEAR(schedule.lr(0), 0.025f, 1e-6);
  EXPECT_NEAR(schedule.lr(1), 0.05f, 1e-6);
  EXPECT_NEAR(schedule.lr(3), 0.1f, 1e-6);
  EXPECT_NEAR(schedule.lr(4), 0.1f, 1e-6);  // first post-warmup round
}

TEST(Schedule, StepDecayHalvesAtSteps) {
  nn::StepDecayLr schedule(0.2f, 10, 0.5f);
  EXPECT_FLOAT_EQ(schedule.lr(0), 0.2f);
  EXPECT_FLOAT_EQ(schedule.lr(9), 0.2f);
  EXPECT_FLOAT_EQ(schedule.lr(10), 0.1f);
  EXPECT_FLOAT_EQ(schedule.lr(25), 0.05f);
  EXPECT_THROW(nn::StepDecayLr(0.1f, 0, 0.5f), std::invalid_argument);
}

TEST(Schedule, FactoryBuildsKnownKinds) {
  for (const char* kind : {"constant", "inverse-sqrt", "step-decay"}) {
    const auto schedule = nn::make_schedule(kind, 0.1f);
    ASSERT_NE(schedule, nullptr);
    EXPECT_GT(schedule->lr(0), 0.0f);
    EXPECT_EQ(schedule->name(), kind);
  }
  EXPECT_THROW(nn::make_schedule("cosine", 0.1f), std::invalid_argument);
}

// Eq. 13 (paper): a convergent schedule drives sum(lr^2)/sum(lr) -> 0.
TEST(Schedule, Eq13RatioShrinksForInverseSqrt) {
  nn::InverseSqrtLr schedule(0.1f);
  const double r100 = nn::eq13_ratio(schedule, 100);
  const double r10000 = nn::eq13_ratio(schedule, 10000);
  EXPECT_LT(r10000, r100 * 0.5);
}

TEST(Schedule, Eq13RatioConstantForConstantLr) {
  nn::ConstantLr schedule(0.1f);
  // float32 lr, double accumulation: tolerance covers the cast.
  EXPECT_NEAR(nn::eq13_ratio(schedule, 100), 0.1, 1e-7);
  EXPECT_NEAR(nn::eq13_ratio(schedule, 10000), 0.1, 1e-7);
}

TEST(Theory, BoundShrinksWithHorizonUnderEq13Schedule) {
  core::TheoryParams params;
  nn::InverseSqrtLr schedule(0.1f);
  const auto b100 = core::theorem1_bound(params, schedule, 100);
  const auto b10000 = core::theorem1_bound(params, schedule, 10000);
  EXPECT_LT(b10000.total(), b100.total());
  EXPECT_GT(b100.total(), 0.0);
}

TEST(Theory, SpeculationTermScalesWithTsSquared) {
  core::TheoryParams params;
  nn::ConstantLr schedule(0.1f);
  params.t_s = 1.0;
  const auto b1 = core::theorem1_bound(params, schedule, 100);
  params.t_s = 10.0;
  const auto b10 = core::theorem1_bound(params, schedule, 100);
  EXPECT_NEAR(b10.speculation_term / b1.speculation_term, 100.0, 1e-6);
  // The other terms are T_S-independent.
  EXPECT_DOUBLE_EQ(b1.optimality_term, b10.optimality_term);
  EXPECT_DOUBLE_EQ(b1.variance_term, b10.variance_term);
}

TEST(Theory, ZeroTsRecoversPlainSgdBound) {
  core::TheoryParams params;
  params.t_s = 0.0;
  nn::ConstantLr schedule(0.1f);
  const auto bound = core::theorem1_bound(params, schedule, 50);
  EXPECT_DOUBLE_EQ(bound.speculation_term, 0.0);
  EXPECT_GT(bound.variance_term, 0.0);
}

TEST(Theory, Eq7BoundFormula) {
  EXPECT_DOUBLE_EQ(core::eq7_deviation_bound(0.1, 2.0, 4.0),
                   0.1 * 0.1 * 2.0 * 2.0 * 4.0);
  EXPECT_THROW(core::eq7_deviation_bound(-0.1, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Theory, RejectsBadInputs) {
  core::TheoryParams params;
  nn::ConstantLr schedule(0.1f);
  EXPECT_THROW(core::theorem1_bound(params, schedule, 0),
               std::invalid_argument);
  params.beta = -1.0;
  EXPECT_THROW(core::theorem1_bound(params, schedule, 10),
               std::invalid_argument);
}

// Property sweep: for every bundled schedule kind, lr stays positive and
// the Theorem 1 bound is finite over long horizons.
class ScheduleSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ScheduleSweep, PositiveAndBoundedOverHorizon) {
  const auto schedule = nn::make_schedule(GetParam(), 0.05f);
  for (int k : {0, 1, 7, 63, 511}) {
    EXPECT_GT(schedule->lr(k), 0.0f) << GetParam() << " round " << k;
    EXPECT_LE(schedule->lr(k), 0.05f + 1e-6) << GetParam();
  }
  core::TheoryParams params;
  const auto bound = core::theorem1_bound(params, *schedule, 512);
  EXPECT_GT(bound.total(), 0.0);
  EXPECT_LT(bound.total(), 1e6);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ScheduleSweep,
                         ::testing::Values("constant", "inverse-sqrt",
                                           "step-decay"));

}  // namespace
}  // namespace fedsu
