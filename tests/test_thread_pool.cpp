// util::ThreadPool: exact range coverage, exception propagation, nested and
// degenerate ranges, chunk indexing — plus the FL determinism contract: a
// simulation's global model is bitwise identical at 1 and 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "util/thread_pool.h"

namespace fedsu::util {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(4), 4);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_GE(ThreadPool::resolve_threads(-3), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(0, kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, GrainCoarsensChunksButKeepsCoverage) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, kN,
      [&](std::size_t begin, std::size_t end) {
        chunks.fetch_add(1);
        EXPECT_GE(end - begin, std::size_t{1});
        for (std::size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
      },
      /*grain=*/400);
  // ceil(1000 / 400) = 3 chunks at most (capped by pool size anyway).
  EXPECT_LE(chunks.load(), 3);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, NonZeroBeginRespected) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  pool.parallel_for(40, 100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(counts[i].load(), 0);
  for (std::size_t i = 40; i < 100; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  pool.parallel_chunks(
      2, 2, [&](std::size_t, std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t begin, std::size_t) {
                                   if (begin == 0) {
                                     throw std::runtime_error("chunk failed");
                                   }
                                 }),
               std::runtime_error);
  // All chunks of the failing region finished before the rethrow, and the
  // pool accepts new work.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 64, [&](std::size_t begin, std::size_t end) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8, kInner = 50;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::size_t begin, std::size_t end) {
    for (std::size_t o = begin; o < end; ++o) {
      pool.parallel_for(0, kInner, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t i = ib; i < ie; ++i) {
          counts[o * kInner + i].fetch_add(1);
        }
      });
    }
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelChunksIndicesAreDenseAndBoundedByPoolSize) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> chunk_ids;
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_chunks(
      0, 1000, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          EXPECT_TRUE(chunk_ids.insert(chunk).second) << "duplicate chunk id";
        }
        for (std::size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
      });
  EXPECT_LE(chunk_ids.size(), std::size_t{4});
  for (std::size_t id : chunk_ids) EXPECT_LT(id, std::size_t{4});
  for (std::size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, ParallelChunksNeverExceedsRangeLength) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_chunks(0, 3,
                       [&](std::size_t, std::size_t, std::size_t) {
                         chunks.fetch_add(1);
                       });
  EXPECT_LE(chunks.load(), 3);
}

TEST(ThreadPool, WorthParallelizingReflectsSizeAndNesting) {
  ThreadPool serial(1);
  EXPECT_FALSE(serial.worth_parallelizing());
  ThreadPool pool(4);
  EXPECT_TRUE(pool.worth_parallelizing());
  std::atomic<bool> nested_worth{true};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t) {
    if (pool.worth_parallelizing()) nested_worth.store(true);
    else nested_worth.store(false);
  });
  EXPECT_FALSE(nested_worth.load());
}

}  // namespace
}  // namespace fedsu::util

namespace fedsu::fl {
namespace {

SimulationOptions determinism_options(int threads) {
  SimulationOptions options;
  options.model.arch = "cnn";  // exercises the conv + matmul kernels
  options.model.image_size = 16;
  options.dataset.image_size = 16;
  options.dataset.train_count = 360;
  options.dataset.test_count = 80;
  options.num_clients = 6;
  options.local.iterations = 3;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 0;
  options.threads = threads;
  return options;
}

std::vector<float> run_rounds(int threads, int rounds) {
  SimulationOptions options = determinism_options(threads);
  ProtocolConfig config;
  config.name = "fedavg";
  config.num_clients = options.num_clients;
  Simulation sim(options, make_protocol(config));
  sim.run(rounds);
  return sim.global_state();
}

// The PR's determinism contract: per-client RNG forks + per-worker replicas
// + ordered aggregation make the global model independent of thread count,
// bit for bit.
TEST(SimulationDeterminism, GlobalModelBitwiseIdenticalAcrossThreadCounts) {
  const std::vector<float> serial = run_rounds(/*threads=*/1, /*rounds=*/3);
  const std::vector<float> parallel = run_rounds(/*threads=*/8, /*rounds=*/3);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                        serial.size() * sizeof(float)),
            0)
      << "global model diverged between 1 and 8 threads";
  const std::vector<float> parallel3 = run_rounds(/*threads=*/3, /*rounds=*/3);
  EXPECT_EQ(std::memcmp(serial.data(), parallel3.data(),
                        serial.size() * sizeof(float)),
            0)
      << "global model diverged between 1 and 3 threads";
}

// Training losses and round records must match too, not just final weights.
TEST(SimulationDeterminism, RoundRecordsMatchAcrossThreadCounts) {
  SimulationOptions serial_options = determinism_options(1);
  SimulationOptions parallel_options = determinism_options(5);
  ProtocolConfig config;
  config.name = "fedavg";
  config.num_clients = serial_options.num_clients;
  Simulation serial(serial_options, make_protocol(config));
  Simulation parallel(parallel_options, make_protocol(config));
  for (int r = 0; r < 3; ++r) {
    const RoundRecord a = serial.step();
    const RoundRecord b = parallel.step();
    EXPECT_EQ(a.train_loss, b.train_loss) << "round " << r;
    EXPECT_EQ(a.bytes_up, b.bytes_up) << "round " << r;
    EXPECT_EQ(a.num_participants, b.num_participants) << "round " << r;
  }
}

}  // namespace
}  // namespace fedsu::fl
