// Server-crash recovery (docs/RECOVERY.md): the run-checkpoint file frame
// (magic / version / CRC-32 footer, atomic write, latest discovery), the
// corruption triad (truncation, flipped bit, wrong magic — fail loudly,
// never load partially), and the bitwise-resume contract: kill a run at
// round k, restore the checkpoint into a fresh process, and the final model
// is byte-identical to the uninterrupted run — sync and async, across
// thread counts, with churn + straggler fault plans active (§5b extended
// across a server crash).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "compress/wire.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "io/checkpoint.h"
#include "io/serialize.h"
#include "obs/health.h"

namespace fedsu::fl {
namespace {

SimulationOptions tiny_options(int threads = 1) {
  SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 400;
  options.dataset.test_count = 120;
  options.num_clients = 6;
  options.local.iterations = 4;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 3;
  options.threads = threads;
  return options;
}

// The churn + straggler plan the acceptance bar requires active while a
// checkpoint is taken and restored.
FaultOptions churn_and_stragglers() {
  FaultOptions faults;
  faults.crash_probability = 0.15;
  faults.crash_rounds_max = 2;
  faults.straggler_probability = 0.25;
  faults.straggler_compute_factor = 3.0;
  faults.straggler_comm_factor = 3.0;
  return faults;
}

Simulation make_sim(const SimulationOptions& options,
                    const std::string& scheme = "fedsu") {
  ProtocolConfig config;
  config.name = scheme;
  config.num_clients = options.num_clients;
  return Simulation(options, make_protocol(config));
}

// A per-test scratch directory under the gtest temp root, emptied up front
// so reruns never see stale checkpoints.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_bitwise(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

// Kill at round `kill_at`, restore through the file layer into a fresh
// simulation, finish, and compare against the uninterrupted run bitwise.
void expect_bitwise_resume(const SimulationOptions& options, int total_rounds,
                           int kill_at, const std::string& label) {
  Simulation reference = make_sim(options);
  for (int r = 0; r < total_rounds; ++r) reference.step();

  const std::string dir = fresh_dir("run_ckpt_" + label);
  std::string path;
  {
    Simulation first = make_sim(options);
    for (int r = 0; r < kill_at; ++r) first.step();
    path = io::save_run_checkpoint(dir, kill_at, first.snapshot_state());
  }  // the first process is dead; only the file survives

  Simulation resumed = make_sim(options);
  resumed.restore_state(io::load_run_checkpoint(path));
  EXPECT_EQ(resumed.rounds_completed(), kill_at) << label;
  for (int r = kill_at; r < total_rounds; ++r) resumed.step();

  SCOPED_TRACE(label);
  expect_bitwise(reference.global_state(), resumed.global_state());
}

// --- file frame ------------------------------------------------------------

TEST(RunCheckpointFile, RoundTripsThePayloadAndPicksTheLatest) {
  const std::string dir = fresh_dir("frame_roundtrip");
  const std::vector<std::uint8_t> payload = {0x01, 0xFE, 0x00, 0x42, 0x99};
  const std::string p2 = io::save_run_checkpoint(dir, 2, payload);
  io::save_run_checkpoint(dir, 10, payload);
  const std::string p4 = io::save_run_checkpoint(dir, 4, {0xAB});
  EXPECT_EQ(io::load_run_checkpoint(p2), payload);
  EXPECT_EQ(io::load_run_checkpoint(p4), std::vector<std::uint8_t>{0xAB});
  // Highest round wins — numerically, not lexically — and strays and tmp
  // leftovers are ignored.
  std::ofstream(dir + "/ckpt-00000099.fedsu.tmp") << "torn write";
  std::ofstream(dir + "/notes.txt") << "not a checkpoint";
  const std::string latest = io::find_latest_run_checkpoint(dir);
  EXPECT_NE(latest.find("ckpt-00000010.fedsu"), std::string::npos);
  // Missing or empty directories report "no checkpoint", not an error.
  EXPECT_EQ(io::find_latest_run_checkpoint(dir + "/nope"), "");
}

TEST(RunCheckpointRetention, PrunesOldestBeyondKeepAndKeepsAllByDefault) {
  const std::string dir = fresh_dir("retention");
  const std::vector<std::uint8_t> payload = {0x11, 0x22};
  for (const int round : {0, 3, 5, 8, 12, 20}) {
    io::save_run_checkpoint(dir, round, payload);
  }
  // keep <= 0 = keep everything (the default policy).
  EXPECT_EQ(io::prune_run_checkpoints(dir, 0), 0u);
  EXPECT_EQ(io::prune_run_checkpoints(dir, -3), 0u);

  // Non-checkpoint files never count against the budget or get removed.
  std::ofstream(dir + "/notes.txt") << "not a checkpoint";
  EXPECT_EQ(io::prune_run_checkpoints(dir, 2), 4u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt-00000012.fedsu"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt-00000020.fedsu"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/ckpt-00000008.fedsu"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/notes.txt"));
  // Already within budget: nothing to do. Latest discovery still works.
  EXPECT_EQ(io::prune_run_checkpoints(dir, 2), 0u);
  EXPECT_NE(io::find_latest_run_checkpoint(dir).find("ckpt-00000020.fedsu"),
            std::string::npos);
  // A missing directory is a no-op, not an error.
  EXPECT_EQ(io::prune_run_checkpoints(dir + "/nope", 1), 0u);
}

TEST(RunCheckpointRetention, SimulationKeepsOnlyTheNewestN) {
  const std::string dir = fresh_dir("retention_sim");
  SimulationOptions options = tiny_options();
  options.checkpoint.every = 2;
  options.checkpoint.dir = dir;
  options.checkpoint.keep = 2;
  Simulation sim = make_sim(options);
  for (int r = 1; r <= 8; ++r) sim.step();
  // Rounds 2, 4, 6, 8 were written; retention keeps only {6, 8}.
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".fedsu") ++files;
  }
  EXPECT_EQ(files, 2);
  EXPECT_FALSE(std::filesystem::exists(dir + "/ckpt-00000004.fedsu"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt-00000006.fedsu"));
  EXPECT_NE(io::find_latest_run_checkpoint(dir).find("ckpt-00000008.fedsu"),
            std::string::npos);
}

TEST(RunCheckpointFile, TruncationFailsLoudly) {
  const std::string dir = fresh_dir("frame_truncated");
  const std::vector<std::uint8_t> payload(256, 0x5A);
  const std::string path = io::save_run_checkpoint(dir, 1, payload);
  const auto full_size = std::filesystem::file_size(path);

  // Cut mid-payload: the CRC footer no longer matches the bytes on disk.
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_THROW(io::load_run_checkpoint(path), std::runtime_error);

  // Cut below the frame header: a distinct, named failure.
  std::filesystem::resize_file(path, 8);
  try {
    io::load_run_checkpoint(path);
    FAIL() << "8-byte file loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(RunCheckpointFile, AFlippedBitFailsTheCrcBeforeAnyParsing) {
  const std::string dir = fresh_dir("frame_bitflip");
  const std::vector<std::uint8_t> payload(128, 0x33);
  const std::string path = io::save_run_checkpoint(dir, 1, payload);

  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(20);  // mid-payload
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(20);
  file.write(&byte, 1);
  file.close();

  try {
    io::load_run_checkpoint(path);
    FAIL() << "bit-flipped checkpoint loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(RunCheckpointFile, WrongMagicIsRejectedEvenWithAValidCrc) {
  const std::string dir = fresh_dir("frame_magic");
  std::filesystem::create_directories(dir);
  // A well-formed frame of some other format: valid CRC, wrong magic.
  io::BinaryWriter writer;
  writer.write_magic(0xC4EC'B01F);  // the legacy model-checkpoint magic
  writer.write_u32(1);
  writer.write_vector(std::vector<std::uint8_t>{1, 2, 3});
  writer.write_u32(compress::wire::crc32(writer.buffer()));
  const std::string path = dir + "/ckpt-00000001.fedsu";
  writer.save_to_file(path);

  try {
    io::load_run_checkpoint(path);
    FAIL() << "foreign frame loaded as a run checkpoint";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

// --- periodic checkpointing in the round loop ------------------------------

TEST(RunCheckpointCadence, RecordsAndFilesFollowTheCadence) {
  const std::string dir = fresh_dir("cadence");
  SimulationOptions options = tiny_options();
  options.checkpoint.every = 2;
  options.checkpoint.dir = dir;
  Simulation sim = make_sim(options);
  for (int r = 1; r <= 7; ++r) {
    const RoundRecord record = sim.step();
    if (r % 2 == 0) {
      ASSERT_TRUE(record.checkpoint) << "round " << r;
      EXPECT_TRUE(record.checkpoint->ok);
      EXPECT_EQ(record.checkpoint->round, r);
      EXPECT_GT(record.checkpoint->bytes, 0u);
      EXPECT_TRUE(std::filesystem::exists(record.checkpoint->path));
    } else {
      EXPECT_FALSE(record.checkpoint) << "round " << r;
    }
  }
  EXPECT_NE(io::find_latest_run_checkpoint(dir).find("ckpt-00000006.fedsu"),
            std::string::npos);
}

TEST(RunCheckpointCadence, CheckpointingNeverPerturbsTheRun) {
  // §5b: a checkpointing run is bitwise identical to a plain one.
  SimulationOptions plain = tiny_options();
  plain.faults = churn_and_stragglers();
  Simulation reference = make_sim(plain);
  for (int r = 0; r < 8; ++r) reference.step();

  SimulationOptions checkpointed = plain;
  checkpointed.checkpoint.every = 2;
  checkpointed.checkpoint.dir = fresh_dir("no_perturb");
  Simulation observed = make_sim(checkpointed);
  for (int r = 0; r < 8; ++r) observed.step();

  expect_bitwise(reference.global_state(), observed.global_state());
}

// --- the bitwise-resume contract -------------------------------------------

TEST(RunCheckpointResume, SyncBitwiseAcrossThreadCountsUnderFaults) {
  for (const int threads : {1, 4, 8}) {
    SimulationOptions options = tiny_options(threads);
    options.faults = churn_and_stragglers();
    expect_bitwise_resume(options, 10, 5,
                          "sync_t" + std::to_string(threads));
  }
}

TEST(RunCheckpointResume, AsyncBitwiseAcrossThreadCountsUnderFaults) {
  for (const int threads : {1, 4, 8}) {
    SimulationOptions options = tiny_options(threads);
    options.faults = churn_and_stragglers();
    options.async.enabled = true;
    options.async.buffer_k = 3;
    expect_bitwise_resume(options, 10, 5,
                          "async_t" + std::to_string(threads));
  }
}

TEST(RunCheckpointResume, ThreadCountIsOutsideTheResumeFrontier) {
  // §5b makes `threads` a pure wall-clock knob, so a snapshot taken at one
  // worker count restores into any other and still matches the reference.
  SimulationOptions at_one = tiny_options(1);
  at_one.faults = churn_and_stragglers();
  const std::string dir = fresh_dir("cross_threads");
  std::string path;
  {
    Simulation first = make_sim(at_one);
    for (int r = 0; r < 5; ++r) first.step();
    path = io::save_run_checkpoint(dir, 5, first.snapshot_state());
  }

  SimulationOptions at_eight = tiny_options(8);
  at_eight.faults = churn_and_stragglers();
  Simulation resumed = make_sim(at_eight);
  resumed.restore_state(io::load_run_checkpoint(path));
  for (int r = 5; r < 10; ++r) resumed.step();

  SimulationOptions at_four = tiny_options(4);
  at_four.faults = churn_and_stragglers();
  Simulation reference = make_sim(at_four);
  for (int r = 0; r < 10; ++r) reference.step();

  expect_bitwise(reference.global_state(), resumed.global_state());
}

TEST(RunCheckpointResume, ServerCrashThenAutoResumeMatchesUninterrupted) {
  // The full tentpole scenario in-process: a scheduled server crash kills
  // the run mid-flight, the latest periodic checkpoint restores it, and the
  // finished run is byte-identical to one that never crashed.
  const std::string dir = fresh_dir("crash_resume");
  SimulationOptions options = tiny_options(2);
  options.faults = churn_and_stragglers();
  options.checkpoint.every = 2;
  options.checkpoint.dir = dir;

  SimulationOptions doomed_options = options;
  doomed_options.faults.server_crash_at = 5;
  Simulation doomed = make_sim(doomed_options);
  int completed = 0;
  try {
    for (int r = 0; r < 10; ++r) {
      doomed.step();
      ++completed;
    }
    FAIL() << "the scheduled server crash never fired";
  } catch (const ServerCrashed& crash) {
    EXPECT_EQ(crash.round(), 5);
  }
  EXPECT_EQ(completed, 5);

  // A resumed process is a new server: no crash plan (FAULT_MODEL.md §7).
  const std::string latest = io::find_latest_run_checkpoint(dir);
  ASSERT_NE(latest.find("ckpt-00000004.fedsu"), std::string::npos);
  Simulation resumed = make_sim(options);
  resumed.restore_state(io::load_run_checkpoint(latest));
  for (int r = resumed.rounds_completed(); r < 10; ++r) resumed.step();

  SimulationOptions ref_options = tiny_options(2);
  ref_options.faults = churn_and_stragglers();
  Simulation reference = make_sim(ref_options);
  for (int r = 0; r < 10; ++r) reference.step();

  expect_bitwise(reference.global_state(), resumed.global_state());
}

// --- restore validation ----------------------------------------------------

TEST(RunCheckpointRestore, RejectsAMismatchedRunIdentity) {
  SimulationOptions options = tiny_options();
  std::vector<std::uint8_t> snapshot;
  {
    Simulation sim = make_sim(options);
    for (int r = 0; r < 3; ++r) sim.step();
    snapshot = sim.snapshot_state();
  }

  SimulationOptions reseeded = options;
  reseeded.seed ^= 0x1234;
  Simulation wrong_seed = make_sim(reseeded);
  EXPECT_THROW(wrong_seed.restore_state(snapshot), std::runtime_error);

  Simulation wrong_protocol = make_sim(options, "fedavg");
  EXPECT_THROW(wrong_protocol.restore_state(snapshot), std::runtime_error);

  SimulationOptions smaller = options;
  smaller.num_clients = 4;
  Simulation wrong_cohort = make_sim(smaller);
  EXPECT_THROW(wrong_cohort.restore_state(snapshot), std::runtime_error);

  SimulationOptions async_options = options;
  async_options.async.enabled = true;
  async_options.async.buffer_k = 3;
  Simulation wrong_mode = make_sim(async_options);
  EXPECT_THROW(wrong_mode.restore_state(snapshot), std::runtime_error);

  // And after every rejection, the matching simulation still restores.
  Simulation right = make_sim(options);
  EXPECT_NO_THROW(right.restore_state(snapshot));
  EXPECT_EQ(right.rounds_completed(), 3);
}

// --- checkpoint-write failure ----------------------------------------------

TEST(RunCheckpointHealth, WriteFailureRaisesCriticalAndTheRunContinues) {
  // Block directory creation by planting a regular file where the
  // checkpoint directory's parent should be.
  const std::string blocker = fresh_dir("ckpt_blocker");
  std::ofstream(blocker) << "in the way";

  SimulationOptions options = tiny_options();
  options.checkpoint.every = 1;
  options.checkpoint.dir = blocker + "/nested";
  Simulation sim = make_sim(options);

  const RoundRecord record = sim.step();
  ASSERT_TRUE(record.checkpoint);
  EXPECT_FALSE(record.checkpoint->ok);
  EXPECT_FALSE(record.checkpoint->error.empty());

  obs::HealthMonitor monitor;
  monitor.begin_run("fedsu", sim.model_state_size());
  monitor.observe_round(record);
  EXPECT_FALSE(monitor.healthy());
  EXPECT_EQ(monitor.raised_count(obs::AlertSeverity::kCritical), 1);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, "checkpoint_failure");

  // A failed write must never kill the run — the next round still steps.
  EXPECT_NO_THROW(sim.step());
}

}  // namespace
}  // namespace fedsu::fl
