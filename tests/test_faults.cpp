// Fault injection & churn (fl/faults + the Simulation fault pipeline +
// FedSuManager rejoin reconciliation — DESIGN.md §10, docs/FAULT_MODEL.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "compress/wire.h"
#include "core/fedsu_manager.h"
#include "fl/faults.h"
#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "io/checkpoint.h"

namespace fedsu::fl {
namespace {

SimulationOptions tiny_options() {
  SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 400;
  options.dataset.test_count = 120;
  options.num_clients = 4;
  options.local.iterations = 4;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 2;
  return options;
}

std::unique_ptr<compress::SyncProtocol> proto_for(const std::string& name,
                                                  int clients) {
  ProtocolConfig config;
  config.name = name;
  config.num_clients = clients;
  return make_protocol(config);
}

std::string write_trace(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << "round,client,event,value\n" << body;
  EXPECT_TRUE(out.good());
  return path;
}

bool same_faults(const ClientFault& a, const ClientFault& b) {
  return a.absent == b.absent && a.rejoined == b.rejoined &&
         a.straggler == b.straggler && a.compute_factor == b.compute_factor &&
         a.comm_factor == b.comm_factor &&
         a.upload_attempts == b.upload_attempts &&
         a.delivered == b.delivered && a.corrupt == b.corrupt;
}

// --- wire-level checksum ---------------------------------------------------

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical CRC-32/IEEE check: crc32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(compress::wire::crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(compress::wire::crc32(std::span<const std::uint8_t>{}),
            0x00000000u);
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  std::vector<std::uint8_t> payload = {0x00, 0xff, 0x5a, 0x17, 0x80, 0x01};
  const std::uint32_t clean = compress::wire::crc32(payload);
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(compress::wire::crc32(payload), clean) << "bit " << bit;
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

// --- the plan itself -------------------------------------------------------

TEST(FaultPlan, ZeroRatesStayDisabled) {
  EXPECT_FALSE(FaultPlan().enabled());
  EXPECT_FALSE(FaultPlan(FaultOptions{}).enabled());
  FaultOptions on;
  on.straggler_probability = 0.1;
  EXPECT_TRUE(FaultPlan(on).enabled());
}

TEST(FaultPlan, DeterministicInSeedRoundClient) {
  FaultOptions options;
  options.crash_probability = 0.1;
  options.straggler_probability = 0.2;
  options.upload_loss_probability = 0.2;
  options.max_retries = 2;
  options.corruption_probability = 0.1;

  FaultPlan a(options), b(options);
  bool differs_somewhere = false;
  FaultOptions reseeded = options;
  reseeded.seed ^= 0x1234567;
  FaultPlan c(reseeded);
  for (int round = 0; round < 40; ++round) {
    a.begin_round(round, 8);
    b.begin_round(round, 8);
    c.begin_round(round, 8);
    for (int client = 0; client < 8; ++client) {
      EXPECT_TRUE(same_faults(a.fault(client), b.fault(client)))
          << "round " << round << " client " << client;
      if (!same_faults(a.fault(client), c.fault(client))) {
        differs_somewhere = true;
      }
    }
  }
  EXPECT_TRUE(differs_somewhere) << "reseeding changed nothing in 320 draws";
}

TEST(FaultPlan, CrashAbsencesAreContiguousAndEndInARejoin) {
  FaultOptions options;
  options.crash_probability = 0.3;
  options.crash_rounds_min = 2;
  options.crash_rounds_max = 4;
  FaultPlan plan(options);

  const int clients = 6;
  std::vector<bool> was_absent(clients, false);
  int total_onsets = 0, total_rejoins = 0;
  for (int round = 0; round < 60; ++round) {
    plan.begin_round(round, clients);
    total_onsets += plan.round_summary().onsets;
    total_rejoins += plan.round_summary().rejoined;
    for (int c = 0; c < clients; ++c) {
      const ClientFault& f = plan.fault(c);
      // The first round back is flagged exactly once, and never overlaps
      // the absence itself.
      EXPECT_EQ(f.rejoined, was_absent[c] && !f.absent);
      if (f.absent) {
        EXPECT_FALSE(f.delivered);
      }
      was_absent[c] = f.absent;
    }
  }
  EXPECT_GT(total_onsets, 0);
  EXPECT_GT(total_rejoins, 0);
  EXPECT_LE(total_rejoins, total_onsets);
}

TEST(FaultPlan, CsvTraceDrivesEvents) {
  const std::string path = write_trace("plan_trace.csv",
                                       "# comment line\n"
                                       "1,0,crash,2\n"
                                       "1,1,straggle-compute,3.5\n"
                                       "1,2,lose-upload,0\n"
                                       "4,3,corrupt,0\n");
  FaultOptions options;
  options.trace_csv = path;
  options.max_retries = 1;
  FaultPlan plan(options);
  EXPECT_TRUE(plan.enabled());

  plan.begin_round(0, 4);
  for (int c = 0; c < 4; ++c) EXPECT_FALSE(plan.fault(c).absent);

  plan.begin_round(1, 4);
  EXPECT_TRUE(plan.fault(0).absent);
  EXPECT_TRUE(plan.fault(1).straggler);
  EXPECT_DOUBLE_EQ(plan.fault(1).compute_factor, 3.5);
  EXPECT_FALSE(plan.fault(2).delivered);

  plan.begin_round(2, 4);
  EXPECT_TRUE(plan.fault(0).absent);
  plan.begin_round(3, 4);
  EXPECT_FALSE(plan.fault(0).absent);
  EXPECT_TRUE(plan.fault(0).rejoined);

  plan.begin_round(4, 4);
  EXPECT_TRUE(plan.fault(3).corrupt);
  EXPECT_FALSE(plan.fault(0).rejoined);
}

// --- server-crash family ---------------------------------------------------

TEST(FaultPlan, ServerCrashKnobsDoNotEngageClientFaults) {
  // The server family must not flip the client-fault pipeline on: enabling
  // it would change participant selection, telemetry format, and byte
  // accounting of an otherwise faultless run.
  FaultOptions options;
  options.server_crash_at = 5;
  FaultPlan plan(options);
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.server_faults_enabled());
  EXPECT_FALSE(plan.server_crash(4));
  EXPECT_TRUE(plan.server_crash(5));
  EXPECT_FALSE(plan.server_crash(6));

  EXPECT_FALSE(FaultPlan().server_faults_enabled());
}

TEST(FaultPlan, ServerCrashProbabilityIsAPureFunctionOfSeedAndRound) {
  FaultOptions options;
  options.server_crash_probability = 0.25;
  FaultPlan a(options), b(options);
  FaultOptions reseeded = options;
  reseeded.seed ^= 0xabcdef;
  FaultPlan c(reseeded);
  int crashes = 0;
  bool differs = false;
  for (int round = 0; round < 200; ++round) {
    // Stateless: the same (seed, round) always answers the same, with no
    // begin_round required and no cross-round coupling.
    EXPECT_EQ(a.server_crash(round), b.server_crash(round)) << round;
    EXPECT_EQ(a.server_crash(round), a.server_crash(round)) << round;
    if (a.server_crash(round)) ++crashes;
    if (a.server_crash(round) != c.server_crash(round)) differs = true;
  }
  EXPECT_GT(crashes, 10);
  EXPECT_LT(crashes, 100);
  EXPECT_TRUE(differs) << "reseeding changed nothing in 200 draws";
}

TEST(FaultPlan, ServerCrashTraceEventDrivesTheCrash) {
  const std::string path = write_trace("server_crash_trace.csv",
                                       "3,0,server-crash,0\n");
  FaultOptions options;
  options.trace_csv = path;
  FaultPlan plan(options);
  // A server-crash-only trace keeps the client pipeline off too.
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.server_faults_enabled());
  EXPECT_FALSE(plan.server_crash(2));
  EXPECT_TRUE(plan.server_crash(3));
  EXPECT_FALSE(plan.server_crash(4));
}

TEST(FaultPlan, RejectsBadServerCrashProbability) {
  FaultOptions bad;
  bad.server_crash_probability = -0.5;
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
}

TEST(SimulationServerCrash, StepThrowsAtTheConfiguredRound) {
  SimulationOptions options = tiny_options();
  options.faults.server_crash_at = 3;
  Simulation sim(options, proto_for("fedsu", options.num_clients));
  for (int r = 0; r < 3; ++r) EXPECT_NO_THROW(sim.step());
  try {
    sim.step();
    FAIL() << "round 3 did not crash the server";
  } catch (const ServerCrashed& crash) {
    EXPECT_EQ(crash.round(), 3);
    EXPECT_NE(std::string(crash.what()).find("round 3"), std::string::npos);
  }
  EXPECT_EQ(sim.rounds_completed(), 3);
}

TEST(FaultPlan, RejectsBadOptions) {
  FaultOptions bad;
  bad.crash_probability = 1.5;
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
  FaultOptions quorum;
  quorum.min_quorum = 0;
  EXPECT_THROW(FaultPlan{quorum}, std::invalid_argument);
  FaultOptions rounds;
  rounds.crash_probability = 0.1;
  rounds.crash_rounds_min = 3;
  rounds.crash_rounds_max = 2;
  EXPECT_THROW(FaultPlan{rounds}, std::invalid_argument);
}

// --- simulation pipeline ---------------------------------------------------

FaultOptions hostile_mix() {
  FaultOptions f;
  f.crash_probability = 0.1;
  f.crash_rounds_max = 2;
  f.straggler_probability = 0.25;
  f.upload_loss_probability = 0.2;
  f.max_retries = 1;
  f.retry_backoff_s = 1.0;
  f.corruption_probability = 0.1;
  f.over_select_fraction = 0.25;
  return f;
}

TEST(SimulationFaults, DisabledPlanLeavesRecordsUntouched) {
  SimulationOptions options = tiny_options();
  Simulation sim(options, proto_for("fedsu", options.num_clients));
  EXPECT_FALSE(sim.fault_plan().enabled());
  const auto records = sim.run(4);
  for (const auto& r : records) {
    EXPECT_FALSE(r.faults.has_value());
  }
}

TEST(SimulationFaults, ScheduleIsIdenticalAcrossThreadCounts) {
  // The §5b contract extended to faults: a hostile mix of churn,
  // stragglers, loss, retries, and corruption must play out bit-for-bit
  // the same whether training fans out over 1 thread or 4.
  auto run_with = [](int threads) {
    SimulationOptions options = tiny_options();
    options.num_clients = 6;
    options.threads = threads;
    options.faults = hostile_mix();
    Simulation sim(options, proto_for("fedsu", options.num_clients));
    auto records = sim.run(10);
    return std::make_pair(std::move(records),
                          std::vector<float>(sim.global_state()));
  };
  auto [records1, state1] = run_with(1);
  auto [records4, state4] = run_with(4);

  ASSERT_EQ(state1.size(), state4.size());
  EXPECT_EQ(std::memcmp(state1.data(), state4.data(),
                        state1.size() * sizeof(float)),
            0);
  ASSERT_EQ(records1.size(), records4.size());
  for (std::size_t i = 0; i < records1.size(); ++i) {
    const auto& a = records1[i];
    const auto& b = records4[i];
    EXPECT_EQ(a.round_time_s, b.round_time_s) << "round " << i;
    EXPECT_EQ(a.bytes_up, b.bytes_up) << "round " << i;
    EXPECT_EQ(a.bytes_down, b.bytes_down) << "round " << i;
    EXPECT_EQ(a.num_participants, b.num_participants) << "round " << i;
    EXPECT_EQ(a.uploads_lost, b.uploads_lost) << "round " << i;
    ASSERT_EQ(a.faults.has_value(), b.faults.has_value()) << "round " << i;
    if (a.faults) {
      EXPECT_EQ(a.faults->crashed, b.faults->crashed) << "round " << i;
      EXPECT_EQ(a.faults->retries, b.faults->retries) << "round " << i;
      EXPECT_EQ(a.faults->corrupt, b.faults->corrupt) << "round " << i;
      EXPECT_EQ(a.faults->quorum_met, b.faults->quorum_met) << "round " << i;
    }
  }
}

TEST(SimulationFaults, FaultCountersBalancePerRound) {
  SimulationOptions options = tiny_options();
  options.num_clients = 6;
  options.faults = hostile_mix();
  Simulation sim(options, proto_for("fedavg", options.num_clients));
  int engaged_rounds = 0;
  for (const auto& r : sim.run(12)) {
    ASSERT_TRUE(r.faults.has_value());
    ++engaged_rounds;
    const auto& fc = *r.faults;
    EXPECT_EQ(fc.selected, r.num_participants + r.uploads_lost + fc.corrupt +
                               fc.deadline_missed + fc.unused)
        << "round " << r.round;
    EXPECT_EQ(fc.quorum_met, r.num_participants > 0) << "round " << r.round;
    if (r.num_participants == 0) {
      EXPECT_EQ(r.bytes_up, 0u);
      EXPECT_EQ(r.speculated_fraction, 0.0);
    }
  }
  EXPECT_EQ(engaged_rounds, 12);
}

TEST(SimulationFaults, RetriesConsumeSimulatedTime) {
  // Two explicit traces, identical except that every client needs a second
  // upload attempt in round 1 of the second run: its round 1 must cost at
  // least the retry backoff more, and the retry tally must say why.
  auto run_with_trace = [](const std::string& path) {
    SimulationOptions options = tiny_options();
    options.faults.trace_csv = path;
    options.faults.max_retries = 1;
    options.faults.retry_backoff_s = 5.0;
    Simulation sim(options, proto_for("fedavg", options.num_clients));
    return sim.run(3);
  };
  const auto clean = run_with_trace(write_trace(
      "retry_none.csv",
      "1,0,lose-upload,1\n1,1,lose-upload,1\n1,2,lose-upload,1\n"
      "1,3,lose-upload,1\n"));
  const auto retried = run_with_trace(write_trace(
      "retry_all.csv",
      "1,0,lose-upload,2\n1,1,lose-upload,2\n1,2,lose-upload,2\n"
      "1,3,lose-upload,2\n"));

  ASSERT_EQ(clean.size(), 3u);
  ASSERT_EQ(retried.size(), 3u);
  // Same aggregation either way — every upload eventually lands...
  EXPECT_EQ(retried[1].num_participants, clean[1].num_participants);
  EXPECT_EQ(retried[1].uploads_lost, 0);
  // ...but the retried round pays: one extra attempt per participant, each
  // preceded by the 5 s backoff on the simulated clock.
  ASSERT_TRUE(retried[1].faults.has_value());
  EXPECT_EQ(retried[1].faults->retries, retried[1].num_participants);
  EXPECT_GE(retried[1].round_time_s, clean[1].round_time_s + 5.0);
  // Rounds without trace events are unaffected.
  EXPECT_EQ(retried[0].round_time_s, clean[0].round_time_s);
}

TEST(SimulationFaults, TotalLossStallsButStaysSelfConsistent) {
  // The documented edge of the legacy flat-loss knob, now routed through
  // the fault plan: a round whose every upload is lost stalls — time
  // passes, the state stays put, and the record is self-consistent.
  SimulationOptions options = tiny_options();
  options.upload_loss_probability = 1.0;  // legacy knob, folded at ctor
  Simulation sim(options, proto_for("fedsu", options.num_clients));
  EXPECT_TRUE(sim.fault_plan().enabled());
  const std::vector<float> before = sim.global_state();
  const auto records = sim.run(3);
  double prev_elapsed = 0.0;
  for (const auto& r : records) {
    EXPECT_EQ(r.num_participants, 0);
    EXPECT_EQ(r.uploads_lost, 3);  // ceil(0.7 * 4) selected, all lost
    EXPECT_EQ(r.bytes_up, 0u);
    EXPECT_EQ(r.speculated_fraction, 0.0);
    EXPECT_GT(r.round_time_s, 0.0);
    EXPECT_GT(r.elapsed_time_s, prev_elapsed);
    prev_elapsed = r.elapsed_time_s;
    ASSERT_TRUE(r.faults.has_value());
    EXPECT_FALSE(r.faults->quorum_met);
  }
  EXPECT_EQ(std::memcmp(before.data(), sim.global_state().data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(SimulationFaults, MinQuorumStallsTheRound) {
  // Loss is heavy but not total; with min_quorum above what survives, the
  // server must refuse the partial aggregate instead of averaging it.
  SimulationOptions options = tiny_options();
  options.seed = 7;
  options.faults.upload_loss_probability = 0.5;
  options.faults.min_quorum = 2;
  Simulation sim(options, proto_for("fedavg", options.num_clients));
  int stalls = 0, aggregates = 0;
  for (const auto& r : sim.run(16)) {
    ASSERT_TRUE(r.faults.has_value());
    if (!r.faults->quorum_met) {
      ++stalls;
      EXPECT_EQ(r.num_participants, 0);
      EXPECT_GT(r.round_time_s, 0.0);
    } else {
      ++aggregates;
      EXPECT_GE(r.num_participants, 2);
    }
  }
  EXPECT_GT(stalls, 0) << "p=0.5 loss never dipped below a quorum of 2";
  EXPECT_GT(aggregates, 0) << "p=0.5 loss never met a quorum of 2";
}

TEST(SimulationFaults, CorruptUploadsAreDetectedAndDiscarded) {
  SimulationOptions options = tiny_options();
  options.faults.corruption_probability = 1.0;
  Simulation sim(options, proto_for("fedavg", options.num_clients));
  const std::vector<float> before = sim.global_state();
  const auto records = sim.run(2);
  for (const auto& r : records) {
    ASSERT_TRUE(r.faults.has_value());
    // Every delivered upload failed its CRC: none may be aggregated.
    EXPECT_EQ(r.num_participants, 0);
    EXPECT_EQ(r.faults->corrupt, 3);
    EXPECT_FALSE(r.faults->quorum_met);
  }
  EXPECT_EQ(std::memcmp(before.data(), sim.global_state().data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(SimulationFaults, OverSelectionBackfillsLostUploads) {
  auto total_participants = [](double over_select) {
    SimulationOptions options = tiny_options();
    options.num_clients = 8;
    options.faults.upload_loss_probability = 0.35;
    options.faults.over_select_fraction = over_select;
    Simulation sim(options, proto_for("fedavg", options.num_clients));
    int total = 0;
    for (const auto& r : sim.run(10)) total += r.num_participants;
    return total;
  };
  // Head-room clients absorb losses; aggregation never exceeds the target.
  EXPECT_GE(total_participants(0.3), total_participants(0.0));
}

TEST(SimulationFaults, RejoinResyncIsChargedAndCounted) {
  SimulationOptions options = tiny_options();
  options.num_clients = 6;
  options.faults.crash_probability = 0.25;
  options.faults.crash_rounds_max = 2;
  Simulation sim(options, proto_for("fedsu", options.num_clients));
  long long resyncs = 0;
  for (const auto& r : sim.run(14)) {
    ASSERT_TRUE(r.faults.has_value());
    EXPECT_EQ(r.faults->resyncs, r.faults->rejoined);
    if (r.faults->resyncs > 0) {
      // The rejoin download (model + protocol join state) is real traffic.
      EXPECT_GT(r.bytes_down, 0u);
    }
    resyncs += r.faults->resyncs;
  }
  EXPECT_GT(resyncs, 0) << "p=0.25 churn never produced a rejoin in 84 draws";
}

TEST(SimulationFaults, AddAndDropDuringChurnStaysDeterministic) {
  // Dynamicity under churn: a client joins and another is dropped in the
  // same round mid-run. Two identical sims must agree bit-for-bit, and the
  // run must keep aggregating afterwards.
  auto run_once = [] {
    SimulationOptions options = tiny_options();
    options.num_clients = 5;
    options.faults.crash_probability = 0.15;
    options.faults.upload_loss_probability = 0.15;
    Simulation sim(options, proto_for("fedsu", options.num_clients));
    data::SyntheticSpec spec = options.dataset;
    spec.train_count = 80;
    spec.seed = 99;
    int participants_after = 0;
    for (int r = 0; r < 12; ++r) {
      if (r == 5) {
        sim.add_client(data::generate_synthetic(spec).train);
        sim.drop_client(1);
      }
      const RoundRecord record = sim.step();
      if (r > 5) participants_after += record.num_participants;
    }
    EXPECT_GT(participants_after, 0);
    return std::vector<float>(sim.global_state());
  };
  const std::vector<float> a = run_once();
  const std::vector<float> b = run_once();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

// --- FedSU rejoin reconciliation (the protocol-level correctness hole) ----

// Drives the manager directly with manufactured oscillating trajectories:
// every client submits the same state (the current global plus an
// alternating-sign delta), so parameters promote into speculative mode and
// accumulate nonzero prediction errors — while the aggregate stays exactly
// the same no matter how many clients participate (means over identical
// values are exact for n in {1, 2}).
struct ManagerRun {
  std::vector<std::vector<float>> globals;  // per round
  std::vector<double> predictable;          // per round
  int promotions = 0;
  int expiries = 0;
};

ManagerRun drive_manager(int rounds, int absent_from, int absent_until,
                         bool call_rejoin) {
  core::FedSuOptions fedsu_options;
  // Thresholds tuned so the alternating-sign trajectory actually cycles
  // through promote -> accumulate errors -> expire -> demote (the EMA of a
  // +/-a trajectory settles near (1-theta)/(1+theta) ~ 0.05 of |a|, so T_R
  // must sit above that while T_S stays low enough to demote).
  fedsu_options.t_r = 0.2;
  fedsu_options.t_s = 2.0;
  fedsu_options.ema_decay = 0.9;
  fedsu_options.warmup = 2;
  fedsu_options.initial_no_check = 2;
  core::FedSuManager manager(2, fedsu_options);

  const std::size_t p = 6;
  std::vector<float> global(p, 0.0f);
  manager.initialize(global);

  ManagerRun run;
  for (int r = 0; r < rounds; ++r) {
    const bool absent = r >= absent_from && r < absent_until;
    if (call_rejoin && r == absent_until) {
      manager.on_client_rejoin(1);
    }
    std::vector<float> submitted(p);
    for (std::size_t j = 0; j < p; ++j) {
      // Alternating sign keeps the oscillation ratio small (promotable);
      // the every-third-round magnitude bump keeps the trajectory from
      // being so regular that a missed error term is exactly zero.
      const float amp = 0.01f * static_cast<float>(j + 1) *
                        ((r % 3 == 0) ? 1.25f : 1.0f);
      submitted[j] = global[j] + ((r % 2 == 0) ? amp : -amp);
    }
    compress::RoundContext ctx;
    ctx.round = r;
    ctx.participants = absent ? std::vector<int>{0} : std::vector<int>{0, 1};
    std::vector<std::span<const float>> views(ctx.participants.size(),
                                              std::span<const float>(submitted));
    compress::SyncResult sync = manager.synchronize(ctx, views);
    global = sync.new_global;
    run.globals.push_back(global);
    run.predictable.push_back(manager.predictable_fraction());
    run.promotions += static_cast<int>(
        manager.last_round_diagnostics().promotions);
    run.expiries +=
        static_cast<int>(manager.last_round_diagnostics().expiring);
  }
  return run;
}

TEST(FedSuRejoin, ResyncedRejoinerMatchesTheNeverCrashedRunBitwise) {
  const int rounds = 16;
  const ManagerRun reference =
      drive_manager(rounds, rounds + 1, rounds + 1, false);  // never absent
  const ManagerRun churned =
      drive_manager(rounds, 5, 8, /*call_rejoin=*/true);

  // The scenario must actually exercise speculation across the absence.
  EXPECT_GT(reference.promotions, 0);
  EXPECT_GT(reference.expiries, 0);

  ASSERT_EQ(reference.globals.size(), churned.globals.size());
  for (int r = 0; r < rounds; ++r) {
    ASSERT_EQ(reference.globals[r].size(), churned.globals[r].size());
    EXPECT_EQ(std::memcmp(reference.globals[r].data(),
                          churned.globals[r].data(),
                          reference.globals[r].size() * sizeof(float)),
              0)
        << "diverged at round " << r;
    EXPECT_EQ(reference.predictable[r], churned.predictable[r])
        << "mask diverged at round " << r;
  }
}

TEST(FedSuRejoin, SkippingTheResyncPollutesErrorFeedback) {
  // The pre-PR hole: without on_client_rejoin, the returned client's stale
  // error accumulator (missing the absence rounds' terms) enters Eq. 3 and
  // bends the corrections away from the never-crashed reference.
  const int rounds = 16;
  const ManagerRun reference =
      drive_manager(rounds, rounds + 1, rounds + 1, false);
  const ManagerRun broken =
      drive_manager(rounds, 5, 8, /*call_rejoin=*/false);

  bool diverged = false;
  for (int r = 0; r < rounds && !diverged; ++r) {
    if (std::memcmp(reference.globals[r].data(), broken.globals[r].data(),
                    reference.globals[r].size() * sizeof(float)) != 0 ||
        reference.predictable[r] != broken.predictable[r]) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged)
      << "stale accumulator never surfaced; strengthen the trajectory";
}

TEST(FedSuRejoin, RejoinValidatesClientId) {
  core::FedSuManager manager(2);
  std::vector<float> global(4, 0.0f);
  manager.initialize(global);
  EXPECT_THROW(manager.on_client_rejoin(-1), std::out_of_range);
  EXPECT_THROW(manager.on_client_rejoin(2), std::out_of_range);
  EXPECT_EQ(manager.on_client_rejoin(0), manager.join_state_bytes());
}

// --- legacy-checkpoint restore onto a churned cohort -----------------------

// A full "fedsu" protocol with the drive_manager thresholds, so the same
// alternating-sign trajectory promotes parameters and accumulates errors.
std::unique_ptr<compress::SyncProtocol> rejoinable_proto() {
  ProtocolConfig config;
  config.name = "fedsu";
  config.num_clients = 2;
  config.fedsu.t_r = 0.2;
  config.fedsu.t_s = 2.0;
  config.fedsu.ema_decay = 0.9;
  config.fedsu.warmup = 2;
  config.fedsu.initial_no_check = 2;
  return make_protocol(config);
}

// Runs `rounds` two-client rounds of the drive_manager trajectory starting
// at `first_round`, returning the final global state. `max_speculated`, when
// given, collects the peak per-round speculated fraction (speculation phases
// expire and re-promote, so any single round may legitimately read zero).
std::vector<float> drive_protocol(compress::SyncProtocol& protocol,
                                  std::vector<float> global, int first_round,
                                  int rounds, double* max_speculated = nullptr) {
  const std::size_t p = global.size();
  for (int r = first_round; r < first_round + rounds; ++r) {
    // Per-client amplitudes must DIFFER: with identical submissions the two
    // error slabs are equal and the filtered mean over {0} equals the mean
    // over {0, 1}, making any slab-release bug invisible.
    std::vector<std::vector<float>> submitted(2, std::vector<float>(p));
    for (int c = 0; c < 2; ++c) {
      for (std::size_t j = 0; j < p; ++j) {
        const float amp = 0.01f * static_cast<float>(j + 1) *
                          ((r % 3 == 0) ? 1.25f : 1.0f) *
                          (c == 0 ? 1.0f : 1.5f);
        submitted[c][j] = global[j] + ((r % 2 == 0) ? amp : -amp);
      }
    }
    compress::RoundContext ctx;
    ctx.round = r;
    ctx.participants = {0, 1};
    std::vector<std::span<const float>> views = {
        std::span<const float>(submitted[0]),
        std::span<const float>(submitted[1])};
    global = protocol.synchronize(ctx, views).new_global;
    if (max_speculated) {
      *max_speculated =
          std::max(*max_speculated,
                   protocol.last_round_telemetry().speculated_fraction);
    }
  }
  return global;
}

TEST(FedSuRejoin, CheckpointRestoreOntoChurnedCohortRederivesRejoinStamps) {
  // The pre-fix hole: restoring a legacy checkpoint onto a cohort where a
  // client churned between snapshot and restore kept that client's
  // snapshot-era error slab live, replaying stale residuals into every
  // later correction. io::restore_protocol re-derives the rejoin stamps
  // for the named absentees; this test pins (a) that it matches the
  // explicit restore-then-on_client_rejoin semantics bitwise, and (b) that
  // the blind restore it replaces really does diverge.
  const std::size_t p = 6;
  auto seed_proto = rejoinable_proto();
  std::vector<float> global(p, 0.0f);
  seed_proto->initialize(global);
  // Checkpoint MID speculative phase, after errors have accrued for at
  // least two rounds: a released slab only changes the future while a
  // phase's accumulated errors are live, so a checkpoint taken between
  // phases would make the blind restore trivially correct.
  int k = 0;
  int speculative_streak = 0;
  while (k < 60 && speculative_streak < 2) {
    global = drive_protocol(*seed_proto, global, k, 1);
    ++k;
    if (seed_proto->last_round_telemetry().speculated_fraction > 0.0) {
      ++speculative_streak;
    } else {
      speculative_streak = 0;
    }
  }
  ASSERT_EQ(speculative_streak, 2) << "the trajectory never speculated";
  const io::Checkpoint checkpoint =
      io::make_checkpoint(*seed_proto, global, k, 0.0);

  // Reference: the explicit rejoin contract, by hand.
  auto explicit_proto = rejoinable_proto();
  explicit_proto->initialize(checkpoint.model_state);
  explicit_proto->restore(checkpoint.protocol_snapshot);
  explicit_proto->on_client_rejoin(1);
  const std::vector<float> explicit_final =
      drive_protocol(*explicit_proto, checkpoint.model_state, k, 12);

  // The helper with client 1 listed absent must match it bitwise.
  auto helper_proto = rejoinable_proto();
  helper_proto->initialize(checkpoint.model_state);
  io::restore_protocol(*helper_proto, checkpoint, {1});
  const std::vector<float> helper_final =
      drive_protocol(*helper_proto, checkpoint.model_state, k, 12);
  EXPECT_EQ(std::memcmp(explicit_final.data(), helper_final.data(),
                        p * sizeof(float)),
            0);

  // The blind restore (what callers did before the helper existed) keeps
  // client 1's stale slab and bends the corrections away.
  auto blind_proto = rejoinable_proto();
  blind_proto->initialize(checkpoint.model_state);
  blind_proto->restore(checkpoint.protocol_snapshot);
  const std::vector<float> blind_final =
      drive_protocol(*blind_proto, checkpoint.model_state, k, 12);
  EXPECT_NE(std::memcmp(explicit_final.data(), blind_final.data(),
                        p * sizeof(float)),
            0)
      << "blind restore matched the rejoin-correct run; the stale-slab "
         "scenario no longer bites — strengthen the trajectory";

  // And the helper refuses a checkpoint from a different scheme.
  auto wrong = proto_for("fedavg", 2);
  EXPECT_THROW(io::restore_protocol(*wrong, checkpoint, {}),
               std::runtime_error);
}

TEST(FedSuRejoin, SnapshotRoundTripsTheRejoinState) {
  core::FedSuOptions fedsu_options;
  fedsu_options.warmup = 2;
  core::FedSuManager manager(2, fedsu_options);
  std::vector<float> global(4, 0.0f);
  manager.initialize(global);
  manager.on_client_rejoin(1);
  const auto bytes = manager.snapshot();

  core::FedSuManager copy(2, fedsu_options);
  copy.restore(bytes);
  EXPECT_EQ(copy.snapshot(), bytes);
}

}  // namespace
}  // namespace fedsu::fl
