#include <gtest/gtest.h>

#include <cmath>

#include "compress/apf.h"
#include "compress/cmfl.h"
#include "compress/fedavg.h"
#include "compress/qsgd.h"
#include "compress/signsgd.h"
#include "compress/topk.h"
#include "fl/protocol_factory.h"

namespace fedsu::compress {
namespace {

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& states) {
  std::vector<std::span<const float>> v;
  v.reserve(states.size());
  for (const auto& s : states) v.emplace_back(s);
  return v;
}

RoundContext ctx_of(int round, int n) {
  RoundContext ctx;
  ctx.round = round;
  for (int i = 0; i < n; ++i) ctx.participants.push_back(i);
  return ctx;
}

TEST(AverageStates, ComputesElementwiseMean) {
  std::vector<std::vector<float>> states{{1, 2}, {3, 6}};
  const auto mean = average_states(views(states));
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 4.0f);
  EXPECT_THROW(average_states({}), std::invalid_argument);
}

TEST(FedAvgProtocol, FullBytesBothWays) {
  FedAvg proto;
  std::vector<float> global{0, 0, 0};
  proto.initialize(global);
  std::vector<std::vector<float>> states{{1, 2, 3}, {3, 4, 5}};
  const auto result = proto.synchronize(ctx_of(0, 2), views(states));
  EXPECT_FLOAT_EQ(result.new_global[0], 2.0f);
  EXPECT_EQ(result.bytes_up[0], 12u);
  EXPECT_EQ(result.bytes_down[1], 12u);
  EXPECT_EQ(result.scalars_up, 6u);
  EXPECT_DOUBLE_EQ(proto.last_sparsification_ratio(), 0.0);
}

TEST(CmflProtocol, FirstRoundEveryoneReports) {
  Cmfl proto;
  std::vector<float> global{0, 0};
  proto.initialize(global);
  std::vector<std::vector<float>> states{{1, 1}, {-1, -1}};
  const auto result = proto.synchronize(ctx_of(0, 2), views(states));
  EXPECT_EQ(result.bytes_up[0], 8u);
  EXPECT_EQ(result.bytes_up[1], 8u);
  EXPECT_DOUBLE_EQ(proto.last_sparsification_ratio(), 0.0);
}

TEST(CmflProtocol, IrrelevantClientWithheld) {
  Cmfl proto;
  std::vector<float> global(10, 0.0f);
  proto.initialize(global);
  // Round 0: both push +1 updates -> global update is +1 everywhere.
  std::vector<std::vector<float>> round0{std::vector<float>(10, 1.0f),
                                         std::vector<float>(10, 1.0f)};
  (void)proto.synchronize(ctx_of(0, 2), views(round0));
  // Round 1: client 0 keeps the +1 direction; client 1 reverses everywhere.
  std::vector<float> up(10, 2.0f), down(10, 0.0f);
  std::vector<std::vector<float>> round1{up, down};
  const auto result = proto.synchronize(ctx_of(1, 2), views(round1));
  EXPECT_GT(result.bytes_up[0], 0u);   // relevant
  EXPECT_EQ(result.bytes_up[1], 0u);   // withheld
  EXPECT_DOUBLE_EQ(proto.last_sparsification_ratio(), 0.5);
  // Aggregation used only client 0.
  EXPECT_FLOAT_EQ(result.new_global[0], 2.0f);
  const auto& rel = proto.last_relevances();
  EXPECT_DOUBLE_EQ(rel[0], 1.0);
  EXPECT_LT(rel[1], 0.2);
}

TEST(CmflProtocol, AllWithheldKeepsGlobal) {
  Cmfl proto;
  std::vector<float> global(4, 0.0f);
  proto.initialize(global);
  std::vector<std::vector<float>> round0{std::vector<float>(4, 1.0f)};
  (void)proto.synchronize(ctx_of(0, 1), views(round0));
  // Every client reverses: all withheld.
  std::vector<std::vector<float>> round1{std::vector<float>(4, -5.0f)};
  const auto result = proto.synchronize(ctx_of(1, 1), views(round1));
  EXPECT_FLOAT_EQ(result.new_global[0], 1.0f);  // unchanged
}

TEST(CmflProtocol, RejectsBadThreshold) {
  CmflOptions options;
  options.relevance_threshold = 1.5;
  EXPECT_THROW(Cmfl{options}, std::invalid_argument);
}

TEST(ApfProtocol, StableParameterGetsFrozen) {
  ApfOptions options;
  options.warmup_rounds = 2;
  options.ema_decay = 0.98;  // zigzag EP floor 0.01, decisively under 0.05
  Apf proto(options);
  std::vector<float> global{0.0f, 0.0f};
  proto.initialize(global);
  // Parameter 0 zigzags around 0 (stable); parameter 1 marches upward.
  // The EP ratio needs ~1/(1-theta) rounds to converge to its floor.
  float x1 = 0.0f;
  bool was_frozen = false;
  for (int r = 0; r < 40; ++r) {
    x1 += 1.0f;
    const float zigzag = (r % 2 == 0) ? 0.1f : -0.1f;
    std::vector<std::vector<float>> states{{zigzag, x1}};
    const auto result = proto.synchronize(ctx_of(r, 1), views(states));
    if (proto.frozen_fraction() > 0.0) was_frozen = true;
    // Parameter 1 must keep being synchronized (never frozen): its value
    // tracks the client value whenever it is synced.
    (void)result;
  }
  EXPECT_TRUE(was_frozen);
  EXPECT_LE(proto.frozen_fraction(), 0.5);  // param 1 never frozen
}

TEST(ApfProtocol, FrozenParameterNotTransmitted) {
  ApfOptions options;
  options.warmup_rounds = 1;
  options.ema_decay = 0.98;
  Apf proto(options);
  std::vector<float> global{0.0f};
  proto.initialize(global);
  bool saw_zero_bytes = false;
  for (int r = 0; r < 40; ++r) {
    const float zigzag = (r % 2 == 0) ? 0.1f : -0.1f;
    std::vector<std::vector<float>> states{{zigzag}};
    const auto result = proto.synchronize(ctx_of(r, 1), views(states));
    if (result.bytes_up[0] == 0) saw_zero_bytes = true;
  }
  EXPECT_TRUE(saw_zero_bytes);
}

TEST(ApfProtocol, FreezingPeriodGrowsAdditively) {
  ApfOptions options;
  options.warmup_rounds = 1;
  options.ema_decay = 0.98;
  Apf proto(options);
  std::vector<float> global{0.0f};
  proto.initialize(global);
  // Perfectly zigzagging parameter: once EP converges below the threshold,
  // freezes recur with additively-growing gaps, so sync rounds thin out —
  // the second half of the horizon must sync strictly less than the first.
  int synced_first_half = 0, synced_second_half = 0;
  const int horizon = 60;
  for (int r = 0; r < horizon; ++r) {
    const float zigzag = (r % 2 == 0) ? 0.1f : -0.1f;
    std::vector<std::vector<float>> states{{zigzag}};
    const auto result = proto.synchronize(ctx_of(r, 1), views(states));
    if (result.bytes_up[0] > 0) {
      (r < horizon / 2 ? synced_first_half : synced_second_half) += 1;
    }
  }
  EXPECT_LT(synced_second_half, synced_first_half);
  EXPECT_LT(synced_second_half, 10);
}

TEST(TopKProtocol, UploadsExactlyKCoordinates) {
  TopKOptions options;
  options.fraction = 0.25;
  TopK proto(2, options);
  std::vector<float> global(8, 0.0f);
  proto.initialize(global);
  std::vector<float> s0(8, 0.0f), s1(8, 0.0f);
  s0[3] = 10.0f;
  s1[5] = -7.0f;
  std::vector<std::vector<float>> states{s0, s1};
  const auto result = proto.synchronize(ctx_of(0, 2), views(states));
  EXPECT_EQ(result.bytes_up[0], 2u * 8u);  // k=2 entries, 8 bytes each
  EXPECT_FLOAT_EQ(result.new_global[3], 5.0f);   // 10 averaged over 2 clients
  EXPECT_FLOAT_EQ(result.new_global[5], -3.5f);
  EXPECT_DOUBLE_EQ(proto.last_sparsification_ratio(), 0.75);
}

TEST(TopKProtocol, ResidualCarriesSkippedMass) {
  TopKOptions options;
  options.fraction = 0.5;  // k = 1 of 2
  TopK proto(1, options);
  std::vector<float> global{0.0f, 0.0f};
  proto.initialize(global);
  // Round 0: update (1.0, 0.6) -> only coord 0 ships; 0.6 goes to residual.
  std::vector<std::vector<float>> r0{{1.0f, 0.6f}};
  auto result = proto.synchronize(ctx_of(0, 1), views(r0));
  EXPECT_FLOAT_EQ(result.new_global[0], 1.0f);
  EXPECT_FLOAT_EQ(result.new_global[1], 0.0f);
  // Round 1: no further local change; the residual alone must now ship.
  std::vector<std::vector<float>> r1{{result.new_global[0],
                                      result.new_global[1]}};
  result = proto.synchronize(ctx_of(1, 1), views(r1));
  EXPECT_FLOAT_EQ(result.new_global[1], 0.6f);
}

TEST(QsgdProtocol, QuantizationIsBoundedError) {
  Qsgd proto;
  std::vector<float> v(100);
  util::Rng rng(3);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  util::Rng qrng(4);
  const auto dq = proto.quantize_dequantize(v, qrng);
  float scale = 0.0f;
  for (float x : v) scale = std::max(scale, std::fabs(x));
  const float step = scale / 127.0f;  // 8 bits -> 127 levels
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::fabs(dq[i] - v[i]), step + 1e-6);
  }
}

TEST(QsgdProtocol, BytesShrinkFourfold) {
  Qsgd proto;
  std::vector<float> global(100, 0.0f);
  proto.initialize(global);
  std::vector<std::vector<float>> states{std::vector<float>(100, 0.5f)};
  const auto result = proto.synchronize(ctx_of(0, 1), views(states));
  EXPECT_EQ(result.bytes_up[0], 100u + 4u);  // 1 byte/coord + scale
}

TEST(QsgdProtocol, ZeroVectorStaysZero) {
  Qsgd proto;
  std::vector<float> v(10, 0.0f);
  util::Rng rng(5);
  const auto dq = proto.quantize_dequantize(v, rng);
  for (float x : dq) EXPECT_EQ(x, 0.0f);
}

TEST(SignSgdProtocol, MovesAlongMajoritySign) {
  SignSgd proto;
  std::vector<float> global{0.0f, 0.0f, 0.0f};
  proto.initialize(global);
  // Clients agree up on coord 0, down on coord 1, split on coord 2 (2 up /
  // 1 down -> majority up).
  std::vector<std::vector<float>> states{
      {1.0f, -1.0f, 1.0f}, {1.0f, -1.0f, 1.0f}, {1.0f, -1.0f, -1.0f}};
  const auto result = proto.synchronize(ctx_of(0, 3), views(states));
  EXPECT_GT(result.new_global[0], 0.0f);
  EXPECT_LT(result.new_global[1], 0.0f);
  EXPECT_GT(result.new_global[2], 0.0f);
  EXPECT_FLOAT_EQ(result.new_global[0], -result.new_global[1]);
}

TEST(SignSgdProtocol, BytesAreOneBitPerCoordinate) {
  SignSgd proto;
  std::vector<float> global(800, 0.0f);
  proto.initialize(global);
  std::vector<std::vector<float>> states{std::vector<float>(800, 1.0f)};
  const auto result = proto.synchronize(ctx_of(0, 1), views(states));
  // Exact serialized mask (ceil(800/8) bytes) + the f32 scale.
  EXPECT_EQ(result.bytes_up[0], (800u + 7) / 8 + sizeof(float));
}

TEST(SignSgdProtocol, TieMeansNoMovement) {
  SignSgd proto;
  std::vector<float> global{0.0f};
  proto.initialize(global);
  std::vector<std::vector<float>> states{{1.0f}, {-1.0f}};
  const auto result = proto.synchronize(ctx_of(0, 2), views(states));
  EXPECT_FLOAT_EQ(result.new_global[0], 0.0f);
}

TEST(SignSgdProtocol, RejectsBadOptions) {
  SignSgdOptions options;
  options.step_scale = 0.0;
  EXPECT_THROW(SignSgd{options}, std::invalid_argument);
}

TEST(ProtocolFactory, BuildsEveryKnownProtocol) {
  for (const auto& name : fl::known_protocols()) {
    fl::ProtocolConfig config;
    config.name = name;
    config.num_clients = 4;
    auto proto = fl::make_protocol(config);
    ASSERT_NE(proto, nullptr) << name;
    std::vector<float> global(16, 0.0f);
    proto->initialize(global);
    std::vector<std::vector<float>> states{std::vector<float>(16, 0.1f),
                                           std::vector<float>(16, 0.2f)};
    RoundContext ctx = ctx_of(0, 2);
    const auto result = proto->synchronize(ctx, views(states));
    EXPECT_EQ(result.new_global.size(), 16u) << name;
  }
}

TEST(ProtocolFactory, UnknownNameThrows) {
  fl::ProtocolConfig config;
  config.name = "gossip";
  EXPECT_THROW(fl::make_protocol(config), std::invalid_argument);
}

}  // namespace
}  // namespace fedsu::compress
