#include <gtest/gtest.h>

#include <cmath>

#include "core/oscillation.h"
#include "core/regression.h"
#include "util/rng.h"

namespace fedsu::core {
namespace {

TEST(Regression, LinearSequenceHasZeroResidual) {
  RegressionDiagnoser diag(1);
  for (int i = 0; i < 8; ++i) diag.observe(0, 1.0f + 0.5f * i);
  ASSERT_TRUE(diag.ready(0));
  EXPECT_LT(diag.normalized_residual(0), 1e-4);
  EXPECT_TRUE(diag.is_linear(0));
  EXPECT_NEAR(diag.slope(0), 0.5, 1e-5);
}

TEST(Regression, NotReadyUntilWindowFull) {
  RegressionOptions options;
  options.window = 5;
  RegressionDiagnoser diag(1, options);
  for (int i = 0; i < 4; ++i) {
    diag.observe(0, static_cast<float>(i));
    EXPECT_FALSE(diag.ready(0));
    EXPECT_FALSE(diag.is_linear(0));
  }
  diag.observe(0, 4.0f);
  EXPECT_TRUE(diag.ready(0));
}

TEST(Regression, QuadraticIsNotLinear) {
  RegressionDiagnoser diag(1);
  for (int i = 0; i < 8; ++i) diag.observe(0, 0.5f * i * i);
  EXPECT_FALSE(diag.is_linear(0));
}

TEST(Regression, RingBufferForgetsOldRegime) {
  RegressionOptions options;
  options.window = 4;
  RegressionDiagnoser diag(1, options);
  // Quadratic prefix, then a clean linear tail longer than the window.
  for (int i = 0; i < 6; ++i) diag.observe(0, 0.3f * i * i);
  EXPECT_FALSE(diag.is_linear(0));
  float v = 100.0f;
  for (int i = 0; i < 4; ++i) diag.observe(0, v += 1.0f);
  EXPECT_TRUE(diag.is_linear(0));
}

TEST(Regression, OutOfRangeThrows) {
  RegressionDiagnoser diag(2);
  EXPECT_THROW(diag.observe(2, 1.0f), std::out_of_range);
  EXPECT_THROW(diag.ready(5), std::out_of_range);
  RegressionOptions bad;
  bad.window = 2;
  EXPECT_THROW(RegressionDiagnoser(1, bad), std::invalid_argument);
}

TEST(Regression, StateCostExceedsOscillationTracker) {
  // The quantitative claim of §IV-A: the window method stores K floats per
  // parameter, the oscillation ratio only O(1).
  const std::size_t p = 1000;
  RegressionOptions options;
  options.window = 16;
  RegressionDiagnoser regression(p, options);
  OscillationTracker oscillation(p);
  EXPECT_GT(regression.state_bytes(), 2 * oscillation.state_bytes());
}

// Both diagnosers must agree on clean inputs; the sweep feeds noisy-linear
// trajectories with varying noise to compare verdict agreement.
class DiagnoserAgreement : public ::testing::TestWithParam<double> {};

TEST_P(DiagnoserAgreement, CleanRegimesMatch) {
  const double noise = GetParam();
  util::Rng rng(31);
  RegressionOptions roptions;
  roptions.window = 8;
  roptions.residual_threshold = 0.3;
  RegressionDiagnoser regression(1, roptions);
  OscillationTracker oscillation(1);

  double value = 0.0, prev = 0.0;
  for (int i = 0; i < 60; ++i) {
    prev = value;
    value += 0.2 + noise * rng.normal();
    regression.observe(0, static_cast<float>(value));
    oscillation.observe(0, static_cast<float>(value - prev));
  }
  if (noise == 0.0) {
    EXPECT_TRUE(regression.is_linear(0));
    EXPECT_LT(oscillation.ratio(0), 0.01);
  } else if (noise >= 10.0) {
    // Both must refuse to call a noise-dominated trajectory linear under
    // strict thresholds.
    EXPECT_FALSE(regression.normalized_residual(0) < 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, DiagnoserAgreement,
                         ::testing::Values(0.0, 0.01, 10.0));

}  // namespace
}  // namespace fedsu::core
