// Observability subsystem tests: level gate, histogram bucket edges,
// registry thread-safety, span nesting/export, per-round telemetry
// invariants, and the must-not-perturb-results contract (DESIGN.md §8).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace fedsu {
namespace {

// Every test leaves the process-wide level as it found it (kOff by default)
// so test order cannot leak instrumentation into unrelated suites.
struct LevelGuard {
  obs::Level old = obs::level();
  ~LevelGuard() { obs::set_level(old); }
};

TEST(ObsLevel, ParseRoundTripsAndRejectsTypos) {
  EXPECT_EQ(obs::parse_level("off"), obs::Level::kOff);
  EXPECT_EQ(obs::parse_level("metrics"), obs::Level::kMetrics);
  EXPECT_EQ(obs::parse_level("trace"), obs::Level::kTrace);
  EXPECT_THROW(obs::parse_level("verbose"), std::invalid_argument);
  EXPECT_STREQ(obs::level_name(obs::Level::kMetrics), "metrics");
}

TEST(ObsLevel, GuardsFollowTheLevel) {
  LevelGuard guard;
  obs::set_level(obs::Level::kOff);
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());
  obs::set_level(obs::Level::kMetrics);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());
  obs::set_level(obs::Level::kTrace);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_TRUE(obs::trace_enabled());
}

TEST(Histogram, LinearBucketEdges) {
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 10.0;
  options.buckets = 10;
  obs::Histogram h(options);
  EXPECT_EQ(h.bucket_index(-0.001), -1);  // underflow
  EXPECT_EQ(h.bucket_index(0.0), 0);      // lower edge inclusive
  EXPECT_EQ(h.bucket_index(0.999), 0);
  EXPECT_EQ(h.bucket_index(1.0), 1);      // bucket edges are lower-inclusive
  EXPECT_EQ(h.bucket_index(9.999), 9);
  EXPECT_EQ(h.bucket_index(10.0), 10);    // hi is exclusive -> overflow
  EXPECT_EQ(h.bucket_index(1e9), 10);

  h.record(-1.0);
  h.record(0.5);
  h.record(5.5);
  h.record(42.0);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.underflow, 1u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[5], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, -1.0 + 0.5 + 5.5 + 42.0);
}

TEST(Histogram, LogScaleBucketEdges) {
  obs::HistogramOptions options;
  options.scale = obs::HistogramOptions::Scale::kLog;
  options.lo = 1.0;
  options.hi = 1024.0;
  options.buckets = 10;  // exact powers of two per bucket
  obs::Histogram h(options);
  EXPECT_EQ(h.bucket_index(0.5), -1);
  EXPECT_EQ(h.bucket_index(0.0), -1);   // log-underflow, not -inf
  EXPECT_EQ(h.bucket_index(-3.0), -1);
  EXPECT_EQ(h.bucket_index(1.0), 0);
  EXPECT_EQ(h.bucket_index(1.99), 0);
  EXPECT_EQ(h.bucket_index(2.0), 1);    // geometric edges, lower-inclusive
  EXPECT_EQ(h.bucket_index(512.0), 9);
  EXPECT_EQ(h.bucket_index(1023.9), 9);
  EXPECT_EQ(h.bucket_index(1024.0), 10);  // overflow
}

TEST(Histogram, LogScaleRequiresPositiveLo) {
  obs::HistogramOptions options;
  options.scale = obs::HistogramOptions::Scale::kLog;
  options.lo = 0.0;
  options.hi = 1.0;
  EXPECT_THROW(obs::Histogram{options}, std::invalid_argument);
}

TEST(MetricsRegistry, KindConflictThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x.kind.conflict");
  EXPECT_THROW(registry.gauge("x.kind.conflict"), std::logic_error);
  EXPECT_THROW(registry.histogram("x.kind.conflict"), std::logic_error);
  // Re-registering the same kind returns the same object.
  registry.counter("x.kind.conflict").add(3);
  EXPECT_EQ(registry.counter("x.kind.conflict").value(), 3u);
}

// Snapshots taken while worker threads hammer the same metrics must be
// race-free (the TSan job runs this) and the final totals exact.
TEST(MetricsRegistry, SnapshotUnderConcurrentIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.concurrent.counter");
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 1.0;
  options.buckets = 4;
  obs::Histogram& hist = registry.histogram("test.concurrent.hist", options);

  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = registry.snapshot();
      EXPECT_LE(snap.counters.at("test.concurrent.counter"),
                static_cast<std::uint64_t>(kThreads) * kIncrements);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.add(1);
        hist.record((t * 0.25 + 0.1) / kThreads * 4.0 * 0.25);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("test.concurrent.counter"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.histograms.at("test.concurrent.hist").count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, JsonExportParsesBack) {
  obs::MetricsRegistry registry;
  registry.counter("a.b.count").add(7);
  registry.gauge("a.b.level").set(0.25);
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 4.0;
  options.buckets = 4;
  registry.histogram("a.b.hist", options).record(1.5);
  const obs::JsonValue root = obs::json_parse(registry.to_json());
  EXPECT_EQ(root.at("counters").at("a.b.count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("a.b.level").as_number(), 0.25);
  EXPECT_EQ(root.at("histograms").at("a.b.hist").at("count").as_number(), 1.0);
}

TEST(Tracer, SpanNestingAndOrdering) {
  LevelGuard guard;
  obs::set_level(obs::Level::kTrace);
  obs::Tracer::global().reset();
  {
    OBS_SPAN("test.outer");
    {
      OBS_SPAN("test.inner_a");
    }
    {
      OBS_SPAN("test.inner_b");
    }
  }
  obs::set_level(obs::Level::kOff);
  const std::vector<obs::SpanEvent> events = obs::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() orders by begin time: outer, then the inners in call order.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner_a");
  EXPECT_STREQ(events[2].name, "test.inner_b");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);
  // The outer interval contains both inner intervals.
  EXPECT_LE(events[0].begin_ns, events[1].begin_ns);
  EXPECT_GE(events[0].end_ns, events[2].end_ns);
  EXPECT_LE(events[1].end_ns, events[2].begin_ns);  // sequential inners
  obs::Tracer::global().reset();
}

TEST(Tracer, DisabledSpansRecordNothing) {
  LevelGuard guard;
  obs::set_level(obs::Level::kOff);
  obs::Tracer::global().reset();
  {
    OBS_SPAN("test.should_not_appear");
  }
  EXPECT_TRUE(obs::Tracer::global().snapshot().empty());
}

TEST(Tracer, ChromeJsonExportParses) {
  LevelGuard guard;
  obs::set_level(obs::Level::kTrace);
  obs::Tracer::global().reset();
  {
    OBS_SPAN("test.export");
  }
  obs::set_level(obs::Level::kOff);
  const obs::JsonValue root =
      obs::json_parse(obs::Tracer::global().chrome_json());
  bool found = false;
  for (const obs::JsonValue& event : root.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    if (event.at("name").as_string() == "test.export") found = true;
  }
  EXPECT_TRUE(found);
  obs::Tracer::global().reset();
}

fl::SimulationOptions tiny_options() {
  fl::SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 400;
  options.dataset.test_count = 120;
  options.num_clients = 4;
  options.local.iterations = 4;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 2;
  return options;
}

std::unique_ptr<compress::SyncProtocol> proto_for(const std::string& name,
                                                  int clients) {
  fl::ProtocolConfig config;
  config.name = name;
  config.num_clients = clients;
  return make_protocol(config);
}

TEST(Telemetry, ThreeRoundSimulationInvariants) {
  LevelGuard guard;
  obs::set_level(obs::Level::kMetrics);
  const std::string path = ::testing::TempDir() + "/fedsu_obs_telemetry.jsonl";

  fl::Simulation sim(tiny_options(), proto_for("fedsu", 4));
  obs::TelemetryWriter telemetry(path, "fedsu");
  sim.set_round_hook(telemetry.hook());
  const std::vector<fl::RoundRecord> records = sim.run(3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(telemetry.rows_written(), 3);

  for (const fl::RoundRecord& r : records) {
    EXPECT_GT(r.bytes_up, 0u);
    EXPECT_GE(r.speculated_fraction, 0.0);
    EXPECT_LE(r.speculated_fraction, 1.0);
    EXPECT_GE(r.fallback_syncs, 0);
    const double phase_sum = r.wall.select_s + r.wall.train_s + r.wall.sync_s +
                             r.wall.timing_s + r.wall.eval_s;
    EXPECT_GT(r.wall.total_s, 0.0);
    EXPECT_LE(phase_sum, r.wall.total_s * 1.0001 + 1e-9);
  }

  // The JSONL re-parses and carries the same invariants.
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    const obs::JsonValue record = obs::json_parse(line);
    EXPECT_EQ(record.at("protocol").as_string(), "fedsu");
    EXPECT_GT(record.at("bytes_up").as_number(), 0.0);
    const double spec = record.at("speculated_fraction").as_number();
    EXPECT_GE(spec, 0.0);
    EXPECT_LE(spec, 1.0);
    EXPECT_EQ(static_cast<int>(record.at("round").as_number()), rows);
    ++rows;
  }
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

// Telemetry bytes must equal the protocol's exact serialized payload: for
// FedSU, one f32 per unpredictable parameter plus one per expiring error
// scalar, per participant (pinned independently in test_invariants.cpp).
TEST(Telemetry, BytesMatchSerializedPayload) {
  fl::Simulation sim(tiny_options(), proto_for("fedavg", 4));
  const fl::RoundRecord record = sim.step();
  // FedAvg round 0: everyone uploads/downloads the dense f32 model.
  const std::size_t per_client = sim.model_state_size() * sizeof(float);
  EXPECT_EQ(record.bytes_up,
            per_client * static_cast<std::size_t>(record.num_participants));
  EXPECT_EQ(record.bytes_down, record.bytes_up);
}

// The determinism contract: instrumentation only observes. A traced run
// must produce bit-identical weights to an untraced one.
TEST(Obs, TracedRunIsBitwiseIdenticalToUntraced) {
  LevelGuard guard;
  obs::set_level(obs::Level::kOff);
  fl::Simulation off(tiny_options(), proto_for("fedsu", 4));
  off.run(3);

  obs::set_level(obs::Level::kTrace);
  fl::Simulation on(tiny_options(), proto_for("fedsu", 4));
  on.run(3);
  obs::set_level(obs::Level::kOff);
  obs::Tracer::global().reset();

  EXPECT_EQ(off.global_state(), on.global_state());
}

}  // namespace
}  // namespace fedsu
