// Observability subsystem tests: level gate, histogram bucket edges,
// registry thread-safety, span nesting/export, per-round telemetry
// invariants, and the must-not-perturb-results contract (DESIGN.md §8).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fl/protocol_factory.h"
#include "fl/simulation.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace fedsu {
namespace {

// Every test leaves the process-wide level as it found it (kOff by default)
// so test order cannot leak instrumentation into unrelated suites.
struct LevelGuard {
  obs::Level old = obs::level();
  ~LevelGuard() { obs::set_level(old); }
};

TEST(ObsLevel, ParseRoundTripsAndRejectsTypos) {
  EXPECT_EQ(obs::parse_level("off"), obs::Level::kOff);
  EXPECT_EQ(obs::parse_level("metrics"), obs::Level::kMetrics);
  EXPECT_EQ(obs::parse_level("trace"), obs::Level::kTrace);
  EXPECT_THROW(obs::parse_level("verbose"), std::invalid_argument);
  EXPECT_STREQ(obs::level_name(obs::Level::kMetrics), "metrics");
}

TEST(ObsLevel, GuardsFollowTheLevel) {
  LevelGuard guard;
  obs::set_level(obs::Level::kOff);
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());
  obs::set_level(obs::Level::kMetrics);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());
  obs::set_level(obs::Level::kTrace);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_TRUE(obs::trace_enabled());
}

TEST(Histogram, LinearBucketEdges) {
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 10.0;
  options.buckets = 10;
  obs::Histogram h(options);
  EXPECT_EQ(h.bucket_index(-0.001), -1);  // underflow
  EXPECT_EQ(h.bucket_index(0.0), 0);      // lower edge inclusive
  EXPECT_EQ(h.bucket_index(0.999), 0);
  EXPECT_EQ(h.bucket_index(1.0), 1);      // bucket edges are lower-inclusive
  EXPECT_EQ(h.bucket_index(9.999), 9);
  EXPECT_EQ(h.bucket_index(10.0), 10);    // hi is exclusive -> overflow
  EXPECT_EQ(h.bucket_index(1e9), 10);

  h.record(-1.0);
  h.record(0.5);
  h.record(5.5);
  h.record(42.0);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.underflow, 1u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[5], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, -1.0 + 0.5 + 5.5 + 42.0);
}

TEST(Histogram, LogScaleBucketEdges) {
  obs::HistogramOptions options;
  options.scale = obs::HistogramOptions::Scale::kLog;
  options.lo = 1.0;
  options.hi = 1024.0;
  options.buckets = 10;  // exact powers of two per bucket
  obs::Histogram h(options);
  EXPECT_EQ(h.bucket_index(0.5), -1);
  EXPECT_EQ(h.bucket_index(0.0), -1);   // log-underflow, not -inf
  EXPECT_EQ(h.bucket_index(-3.0), -1);
  EXPECT_EQ(h.bucket_index(1.0), 0);
  EXPECT_EQ(h.bucket_index(1.99), 0);
  EXPECT_EQ(h.bucket_index(2.0), 1);    // geometric edges, lower-inclusive
  EXPECT_EQ(h.bucket_index(512.0), 9);
  EXPECT_EQ(h.bucket_index(1023.9), 9);
  EXPECT_EQ(h.bucket_index(1024.0), 10);  // overflow
}

TEST(Histogram, LogScaleRequiresPositiveLo) {
  obs::HistogramOptions options;
  options.scale = obs::HistogramOptions::Scale::kLog;
  options.lo = 0.0;
  options.hi = 1.0;
  EXPECT_THROW(obs::Histogram{options}, std::invalid_argument);
}

TEST(MetricsRegistry, KindConflictThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x.kind.conflict");
  EXPECT_THROW(registry.gauge("x.kind.conflict"), std::logic_error);
  EXPECT_THROW(registry.histogram("x.kind.conflict"), std::logic_error);
  // Re-registering the same kind returns the same object.
  registry.counter("x.kind.conflict").add(3);
  EXPECT_EQ(registry.counter("x.kind.conflict").value(), 3u);
}

// Snapshots taken while worker threads hammer the same metrics must be
// race-free (the TSan job runs this) and the final totals exact.
TEST(MetricsRegistry, SnapshotUnderConcurrentIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.concurrent.counter");
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 1.0;
  options.buckets = 4;
  obs::Histogram& hist = registry.histogram("test.concurrent.hist", options);

  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = registry.snapshot();
      EXPECT_LE(snap.counters.at("test.concurrent.counter"),
                static_cast<std::uint64_t>(kThreads) * kIncrements);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.add(1);
        hist.record((t * 0.25 + 0.1) / kThreads * 4.0 * 0.25);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("test.concurrent.counter"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.histograms.at("test.concurrent.hist").count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, JsonExportParsesBack) {
  obs::MetricsRegistry registry;
  registry.counter("a.b.count").add(7);
  registry.gauge("a.b.level").set(0.25);
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 4.0;
  options.buckets = 4;
  registry.histogram("a.b.hist", options).record(1.5);
  const obs::JsonValue root = obs::json_parse(registry.to_json());
  EXPECT_EQ(root.at("counters").at("a.b.count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("a.b.level").as_number(), 0.25);
  EXPECT_EQ(root.at("histograms").at("a.b.hist").at("count").as_number(), 1.0);
}

TEST(Tracer, SpanNestingAndOrdering) {
  LevelGuard guard;
  obs::set_level(obs::Level::kTrace);
  obs::Tracer::global().reset();
  {
    OBS_SPAN("test.outer");
    {
      OBS_SPAN("test.inner_a");
    }
    {
      OBS_SPAN("test.inner_b");
    }
  }
  obs::set_level(obs::Level::kOff);
  const std::vector<obs::SpanEvent> events = obs::Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() orders by begin time: outer, then the inners in call order.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner_a");
  EXPECT_STREQ(events[2].name, "test.inner_b");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);
  // The outer interval contains both inner intervals.
  EXPECT_LE(events[0].begin_ns, events[1].begin_ns);
  EXPECT_GE(events[0].end_ns, events[2].end_ns);
  EXPECT_LE(events[1].end_ns, events[2].begin_ns);  // sequential inners
  obs::Tracer::global().reset();
}

TEST(Tracer, DisabledSpansRecordNothing) {
  LevelGuard guard;
  obs::set_level(obs::Level::kOff);
  obs::Tracer::global().reset();
  {
    OBS_SPAN("test.should_not_appear");
  }
  EXPECT_TRUE(obs::Tracer::global().snapshot().empty());
}

TEST(Tracer, ChromeJsonExportParses) {
  LevelGuard guard;
  obs::set_level(obs::Level::kTrace);
  obs::Tracer::global().reset();
  {
    OBS_SPAN("test.export");
  }
  obs::set_level(obs::Level::kOff);
  const obs::JsonValue root =
      obs::json_parse(obs::Tracer::global().chrome_json());
  bool found = false;
  for (const obs::JsonValue& event : root.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    if (event.at("name").as_string() == "test.export") found = true;
  }
  EXPECT_TRUE(found);
  obs::Tracer::global().reset();
}

fl::SimulationOptions tiny_options() {
  fl::SimulationOptions options;
  options.model.arch = "mlp";
  options.model.image_size = 10;
  options.model.hidden = 16;
  options.dataset.image_size = 10;
  options.dataset.train_count = 400;
  options.dataset.test_count = 120;
  options.num_clients = 4;
  options.local.iterations = 4;
  options.local.batch_size = 8;
  options.local.learning_rate = 0.05f;
  options.eval_every = 2;
  return options;
}

std::unique_ptr<compress::SyncProtocol> proto_for(const std::string& name,
                                                  int clients) {
  fl::ProtocolConfig config;
  config.name = name;
  config.num_clients = clients;
  return make_protocol(config);
}

TEST(Telemetry, ThreeRoundSimulationInvariants) {
  LevelGuard guard;
  obs::set_level(obs::Level::kMetrics);
  const std::string path = ::testing::TempDir() + "/fedsu_obs_telemetry.jsonl";

  fl::Simulation sim(tiny_options(), proto_for("fedsu", 4));
  obs::TelemetryWriter telemetry(path, "fedsu");
  sim.set_round_hook(telemetry.hook());
  const std::vector<fl::RoundRecord> records = sim.run(3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(telemetry.rows_written(), 3);

  for (const fl::RoundRecord& r : records) {
    EXPECT_GT(r.bytes_up, 0u);
    EXPECT_GE(r.speculated_fraction, 0.0);
    EXPECT_LE(r.speculated_fraction, 1.0);
    EXPECT_GE(r.fallback_syncs, 0);
    const double phase_sum = r.wall.select_s + r.wall.train_s + r.wall.sync_s +
                             r.wall.timing_s + r.wall.eval_s;
    EXPECT_GT(r.wall.total_s, 0.0);
    EXPECT_LE(phase_sum, r.wall.total_s * 1.0001 + 1e-9);
  }

  // The JSONL re-parses and carries the same invariants.
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    const obs::JsonValue record = obs::json_parse(line);
    EXPECT_EQ(record.at("protocol").as_string(), "fedsu");
    EXPECT_GT(record.at("bytes_up").as_number(), 0.0);
    const double spec = record.at("speculated_fraction").as_number();
    EXPECT_GE(spec, 0.0);
    EXPECT_LE(spec, 1.0);
    EXPECT_EQ(static_cast<int>(record.at("round").as_number()), rows);
    ++rows;
  }
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

// Telemetry bytes must equal the protocol's exact serialized payload: for
// FedSU, one f32 per unpredictable parameter plus one per expiring error
// scalar, per participant (pinned independently in test_invariants.cpp).
TEST(Telemetry, BytesMatchSerializedPayload) {
  fl::Simulation sim(tiny_options(), proto_for("fedavg", 4));
  const fl::RoundRecord record = sim.step();
  // FedAvg round 0: everyone uploads/downloads the dense f32 model.
  const std::size_t per_client = sim.model_state_size() * sizeof(float);
  EXPECT_EQ(record.bytes_up,
            per_client * static_cast<std::size_t>(record.num_participants));
  EXPECT_EQ(record.bytes_down, record.bytes_up);
}

TEST(Metrics, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.counter("fl.round.count").add(3);
  registry.gauge("async/buffer.fill").set(0.5);
  obs::HistogramOptions options;
  options.lo = 0.0;
  options.hi = 4.0;
  options.buckets = 4;
  obs::Histogram& hist = registry.histogram("round.time_s", options);
  hist.record(-1.0);  // underflow: folds into every bucket
  hist.record(0.5);
  hist.record(2.5);
  hist.record(99.0);  // overflow: +Inf only
  const std::string text = registry.to_prometheus();

  EXPECT_EQ(obs::MetricsRegistry::prometheus_name("async/buffer.fill"),
            "fedsu_async_buffer_fill");
  EXPECT_NE(text.find("# TYPE fedsu_fl_round_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("fedsu_fl_round_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fedsu_async_buffer_fill gauge"),
            std::string::npos);
  // Buckets are cumulative: le="1" holds underflow + the 0.5 sample; the
  // overflow sample appears only in +Inf; _count covers all four.
  EXPECT_NE(text.find("fedsu_round_time_s_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fedsu_round_time_s_bucket{le=\"4\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fedsu_round_time_s_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("fedsu_round_time_s_count 4"), std::string::npos);
}

fl::RoundRecord health_record(int round, double loss) {
  fl::RoundRecord r;
  r.round = round;
  r.train_loss = loss;
  r.num_participants = 4;
  r.bytes_up = 100;
  r.bytes_down = 100;
  return r;
}

// Convenience: all alerts of one rule, in emission order.
std::vector<obs::Alert> alerts_for(const obs::HealthMonitor& monitor,
                                   const std::string& rule) {
  std::vector<obs::Alert> out;
  for (const obs::Alert& a : monitor.alerts()) {
    if (a.rule == rule) out.push_back(a);
  }
  return out;
}

TEST(Health, NonFiniteLossIsEdgeTriggered) {
  obs::HealthMonitor monitor;
  monitor.begin_run("fedsu", 0);
  monitor.observe_round(health_record(0, 1.0));
  EXPECT_TRUE(monitor.healthy());
  EXPECT_TRUE(monitor.alerts().empty());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  monitor.observe_round(health_record(1, nan));
  EXPECT_FALSE(monitor.healthy());
  monitor.observe_round(health_record(2, nan));  // persists: no second edge
  monitor.observe_round(health_record(3, 0.9));  // recovers: one clear edge

  const auto edges = alerts_for(monitor, "non_finite_loss");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].round, 1);
  EXPECT_EQ(edges[0].severity, obs::AlertSeverity::kCritical);
  EXPECT_FALSE(edges[1].raised);
  EXPECT_EQ(edges[1].round, 3);
  EXPECT_TRUE(monitor.healthy());
  EXPECT_EQ(monitor.raised_count(obs::AlertSeverity::kCritical), 1);
}

TEST(Health, PlateauRaisesAndImprovementClears) {
  obs::HealthOptions options;
  options.plateau_window = 3;
  obs::HealthMonitor monitor(options);
  monitor.begin_run("fedsu", 0);
  monitor.observe_round(health_record(0, 1.0));
  for (int r = 1; r <= 3; ++r) {  // three stale rounds fill the window
    monitor.observe_round(health_record(r, 1.0));
  }
  monitor.observe_round(health_record(4, 0.5));  // real improvement clears

  const auto edges = alerts_for(monitor, "loss_plateau");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].round, 3);
  EXPECT_EQ(edges[0].severity, obs::AlertSeverity::kWarning);
  EXPECT_FALSE(edges[1].raised);
  EXPECT_EQ(edges[1].round, 4);
}

TEST(Health, DivergenceNeedsAFullWindowAndIsCritical) {
  obs::HealthOptions options;
  options.divergence_window = 2;
  obs::HealthMonitor monitor(options);
  monitor.begin_run("fedsu", 0);
  monitor.observe_round(health_record(0, 1.0));  // best = 1.0
  monitor.observe_round(health_record(1, 4.0));  // streak 1: not yet
  EXPECT_TRUE(alerts_for(monitor, "loss_divergence").empty());
  monitor.observe_round(health_record(2, 4.0));  // streak 2: raised
  EXPECT_FALSE(monitor.healthy());
  monitor.observe_round(health_record(3, 1.0));  // back near best: cleared
  EXPECT_TRUE(monitor.healthy());

  const auto edges = alerts_for(monitor, "loss_divergence");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].severity, obs::AlertSeverity::kCritical);
  EXPECT_EQ(edges[0].round, 2);
  EXPECT_EQ(edges[1].round, 3);
}

TEST(Health, FallbackStormScalesWithModelSize) {
  obs::HealthOptions options;
  options.fallback_storm_window = 2;  // fraction 0.05 x 1000 = 50 scalars
  obs::HealthMonitor monitor(options);
  monitor.begin_run("fedsu", 1000);
  fl::RoundRecord storm = health_record(0, 1.0);
  storm.fallback_syncs = 100;
  monitor.observe_round(storm);
  storm.round = 1;
  monitor.observe_round(storm);  // second consecutive burst: raised
  fl::RoundRecord calm = health_record(2, 1.0);
  monitor.observe_round(calm);  // streak resets: cleared

  const auto edges = alerts_for(monitor, "fallback_storm");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].round, 1);
  EXPECT_DOUBLE_EQ(edges[0].threshold, 50.0);
  EXPECT_FALSE(edges[1].raised);
}

TEST(Health, SpeculationOscillationStorm) {
  obs::HealthMonitor monitor;  // osc_window 6, 3 flips of >= 0.05
  monitor.begin_run("fedsu", 0);
  // Promote/demote flapping: the speculated fraction ping-pongs.
  const double flapping[] = {0.2, 0.8, 0.2, 0.8, 0.2};
  int round = 0;
  for (const double spec : flapping) {
    fl::RoundRecord r = health_record(round++, 1.0);
    r.speculated_fraction = spec;
    monitor.observe_round(r);
  }
  auto edges = alerts_for(monitor, "speculation_oscillation");
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].round, 4);  // third reversal lands on the fifth round

  // A steady fraction slides the flaps out of the window and clears.
  for (int i = 0; i < 8; ++i) {
    fl::RoundRecord r = health_record(round++, 1.0);
    r.speculated_fraction = 0.5;
    monitor.observe_round(r);
  }
  edges = alerts_for(monitor, "speculation_oscillation");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_FALSE(edges[1].raised);
}

TEST(Health, StragglerDriftOverFaultWindow) {
  obs::HealthOptions options;
  options.straggler_window = 2;  // fraction threshold stays 0.5
  obs::HealthMonitor monitor(options);
  monitor.begin_run("fedsu", 0);
  for (int r = 0; r < 2; ++r) {
    fl::RoundRecord rec = health_record(r, 1.0);
    rec.faults.emplace();
    rec.faults->selected = 10;
    rec.faults->stragglers = 8;
    monitor.observe_round(rec);
  }
  fl::RoundRecord rec = health_record(2, 1.0);
  rec.faults.emplace();
  rec.faults->selected = 10;  // windowed fraction drops to 8/20
  monitor.observe_round(rec);

  const auto edges = alerts_for(monitor, "straggler_drift");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].round, 1);  // fires only once the window is full
  EXPECT_DOUBLE_EQ(edges[0].value, 0.8);
  EXPECT_FALSE(edges[1].raised);
}

TEST(Health, StalenessBlowupAndByteBudget) {
  obs::HealthOptions options;
  options.staleness_max = 2;
  options.byte_budget_per_round = 150;
  obs::HealthMonitor monitor(options);
  monitor.begin_run("async/fedsu", 0);
  fl::RoundRecord hot = health_record(0, 1.0);  // 200 bytes > 150 budget
  hot.async.emplace();
  hot.async->max_staleness = 5;
  monitor.observe_round(hot);
  fl::RoundRecord cool = health_record(1, 1.0);
  cool.async.emplace();
  cool.async->max_staleness = 1;
  cool.bytes_up = cool.bytes_down = 50;
  monitor.observe_round(cool);

  const auto staleness = alerts_for(monitor, "staleness_blowup");
  const auto budget = alerts_for(monitor, "byte_budget_overrun");
  ASSERT_EQ(staleness.size(), 2u);
  ASSERT_EQ(budget.size(), 2u);
  EXPECT_TRUE(staleness[0].raised);
  EXPECT_DOUBLE_EQ(staleness[0].value, 5.0);
  EXPECT_FALSE(staleness[1].raised);
  EXPECT_TRUE(budget[0].raised);
  EXPECT_DOUBLE_EQ(budget[0].value, 200.0);
  EXPECT_FALSE(budget[1].raised);
  EXPECT_EQ(monitor.raised_count(obs::AlertSeverity::kWarning), 2);
}

TEST(Health, ModelProbeCatchesNaNInjection) {
  obs::HealthMonitor monitor;
  monitor.begin_run("fedsu", 0);
  std::vector<float> state{1.0f, 2.0f, 3.0f};
  monitor.observe_model(0, state);
  EXPECT_TRUE(monitor.alerts().empty());

  state[1] = std::numeric_limits<float>::quiet_NaN();
  monitor.observe_model(1, state);
  EXPECT_FALSE(monitor.healthy());
  state[1] = 2.0f;
  // One probe after recovery the update norm is still NaN-vs-NaN; the rule
  // clears on the next fully finite delta.
  monitor.observe_model(2, state);
  monitor.observe_model(3, state);
  EXPECT_TRUE(monitor.healthy());

  const auto edges = alerts_for(monitor, "non_finite_update");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0].raised);
  EXPECT_EQ(edges[0].severity, obs::AlertSeverity::kCritical);
  EXPECT_EQ(edges[0].round, 1);
  EXPECT_FALSE(edges[1].raised);
  EXPECT_EQ(edges[1].round, 3);
}

TEST(Health, RuleStateResetsAcrossRuns) {
  obs::HealthMonitor monitor;
  monitor.begin_run("fedsu", 0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  monitor.observe_round(health_record(0, nan));
  EXPECT_FALSE(monitor.healthy());
  // A new segment must not inherit the active edge: no spurious "cleared"
  // alert for the next scheme, and health is fresh.
  monitor.begin_run("fedavg", 0);
  EXPECT_TRUE(monitor.healthy());
  monitor.observe_round(health_record(0, 1.0));
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].scheme, "fedsu");
}

TEST(Health, AlertsJsonlMatchesProductionEncoding) {
  const std::string path = ::testing::TempDir() + "/fedsu_obs_alerts.jsonl";
  obs::HealthMonitor monitor;
  monitor.open_alerts_file(path);
  monitor.begin_run("baseline/fedsu", 0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  monitor.observe_round(health_record(0, nan));
  monitor.observe_round(health_record(1, 1.0));

  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(rows, monitor.alerts().size());
    EXPECT_EQ(line, obs::HealthMonitor::to_json_line(monitor.alerts()[rows]));
    const obs::JsonValue parsed = obs::json_parse(line);
    EXPECT_EQ(parsed.at("scheme").as_string(), "baseline/fedsu");
    EXPECT_EQ(parsed.at("rule").as_string(), "non_finite_loss");
    EXPECT_EQ(parsed.at("severity").as_string(), "critical");
    EXPECT_EQ(parsed.at("state").as_string(), rows == 0 ? "raised" : "cleared");
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
  std::remove(path.c_str());
}

// Full-stack integration: a buffered-async run under 100% straggler faults,
// monitored through the round hook, raises the expected alert rules.
TEST(Health, FaultsAndAsyncIntegrationRaisesAlerts) {
  fl::SimulationOptions options = tiny_options();
  options.async.enabled = true;
  options.async.buffer_k = 2;
  options.faults.straggler_probability = 1.0;

  obs::HealthOptions health;
  health.byte_budget_per_round = 1;  // every cycle overruns
  health.straggler_fraction = 0.25;
  health.straggler_window = 2;
  obs::HealthMonitor monitor(health);

  fl::Simulation sim(options, proto_for("fedsu", options.num_clients));
  monitor.begin_run("async/fedsu", sim.model_state_size());
  sim.set_round_hook(monitor.hook());
  for (int cycle = 0; cycle < 6; ++cycle) sim.step();

  EXPECT_FALSE(alerts_for(monitor, "byte_budget_overrun").empty());
  EXPECT_FALSE(alerts_for(monitor, "straggler_drift").empty());
  EXPECT_GE(monitor.raised_count(obs::AlertSeverity::kWarning), 2);
  EXPECT_TRUE(monitor.healthy());  // noisy, but not critical
}

// The §5b determinism contract for the monitor: observing every round AND
// probing the model each round must not perturb the weights — sync path.
TEST(Health, MonitoredSyncRunIsBitwiseIdenticalToUnmonitored) {
  fl::Simulation plain(tiny_options(), proto_for("fedsu", 4));
  plain.run(3);

  obs::HealthMonitor monitor;
  fl::Simulation watched(tiny_options(), proto_for("fedsu", 4));
  monitor.begin_run("fedsu", watched.model_state_size());
  watched.set_round_hook(monitor.hook());
  for (int round = 0; round < 3; ++round) {
    watched.step();
    monitor.observe_model(round, watched.global_state());
  }
  EXPECT_EQ(plain.global_state(), watched.global_state());
}

// Same contract on the buffered-async path (per-cycle records).
TEST(Health, MonitoredAsyncRunIsBitwiseIdenticalToUnmonitored) {
  fl::SimulationOptions options = tiny_options();
  options.async.enabled = true;
  options.async.buffer_k = 2;
  fl::Simulation plain(options, proto_for("fedsu", options.num_clients));
  for (int cycle = 0; cycle < 3; ++cycle) plain.step();

  obs::HealthMonitor monitor;
  fl::Simulation watched(options, proto_for("fedsu", options.num_clients));
  monitor.begin_run("async/fedsu", watched.model_state_size());
  watched.set_round_hook(monitor.hook());
  for (int cycle = 0; cycle < 3; ++cycle) {
    watched.step();
    monitor.observe_model(cycle, watched.global_state());
  }
  EXPECT_EQ(plain.global_state(), watched.global_state());
}

TEST(Manifest, SchemaRoundTripsAndTotalsSum) {
  obs::RunManifest manifest("test_bench");
  obs::RunEnvironment env;
  env.seed = 7;
  env.threads = 2;
  env.isa = "avx2-fma";
  env.build = "release";
  env.obs_level = "metrics";
  manifest.set_environment(env);
  manifest.set_config({{"rounds", "6"}, {"scheme", "fedsu"}});

  obs::RunAggregates cell;
  cell.scheme = "fedsu";
  cell.setting = "baseline";
  cell.rounds = 6;
  cell.bytes_up = 100;
  cell.bytes_down = 50;
  cell.final_accuracy = 0.5;
  cell.best_accuracy = 0.6;
  cell.alerts_warning = 2;
  cell.fault_totals["crashed"] = 1;
  manifest.add_run(cell);
  obs::RunAggregates reached = cell;
  reached.scheme = "fedavg";
  reached.time_to_target_s = 12.5;
  reached.gigabytes_to_target = 0.25;
  reached.alerts_critical = 1;
  manifest.add_run(reached);
  manifest.set_outcome("ok");

  const obs::JsonValue root = obs::json_parse(manifest.to_json());
  EXPECT_EQ(root.at("schema").as_string(), obs::RunManifest::kSchema);
  EXPECT_EQ(root.at("outcome").as_string(), "ok");
  EXPECT_GE(root.at("end_unix_s").as_number(),
            root.at("start_unix_s").as_number());
  EXPECT_EQ(root.at("environment").at("isa").as_string(), "avx2-fma");
  EXPECT_EQ(root.at("config").at("scheme").as_string(), "fedsu");

  const auto& runs = root.at("runs").as_array();
  ASSERT_EQ(runs.size(), 2u);
  // Negative to-target sentinels serialize as null ("never reached").
  EXPECT_TRUE(runs[0].at("time_to_target_s").is_null());
  EXPECT_TRUE(runs[0].at("gigabytes_to_target").is_null());
  EXPECT_DOUBLE_EQ(runs[1].at("time_to_target_s").as_number(), 12.5);
  EXPECT_EQ(runs[0].at("faults").at("crashed").as_number(), 1.0);
  EXPECT_EQ(runs[0].at("alerts").at("warning").as_number(), 2.0);

  const obs::JsonValue& totals = root.at("totals");
  EXPECT_EQ(totals.at("rounds").as_number(), 12.0);
  EXPECT_EQ(totals.at("bytes_up").as_number(), 200.0);
  EXPECT_EQ(totals.at("bytes_down").as_number(), 100.0);
  EXPECT_EQ(totals.at("alerts_warning").as_number(), 4.0);
  EXPECT_EQ(totals.at("alerts_critical").as_number(), 1.0);
}

// The determinism contract: instrumentation only observes. A traced run
// must produce bit-identical weights to an untraced one.
TEST(Obs, TracedRunIsBitwiseIdenticalToUntraced) {
  LevelGuard guard;
  obs::set_level(obs::Level::kOff);
  fl::Simulation off(tiny_options(), proto_for("fedsu", 4));
  off.run(3);

  obs::set_level(obs::Level::kTrace);
  fl::Simulation on(tiny_options(), proto_for("fedsu", 4));
  on.run(3);
  obs::set_level(obs::Level::kOff);
  obs::Tracer::global().reset();

  EXPECT_EQ(off.global_state(), on.global_state());
}

}  // namespace
}  // namespace fedsu
